"""Tests for the CSR Graph container."""

import numpy as np
import pytest

from repro.core import Graph, EdgeList, path_graph
from repro.errors import GraphFormatError, GraphStructureError


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges([0, 1], [1, 2])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert not g.directed

    def test_num_vertices_explicit(self):
        g = Graph.from_edges([0], [1], num_vertices=10)
        assert g.num_vertices == 10
        assert g.degree(9) == 0

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([0, 5], [1, 1], num_vertices=3)

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([-1], [1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([0, 1], [1])

    def test_rejects_weight_mismatch(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([0, 1], [1, 2], weights=[1.0])

    def test_dedup_undirected_reversed_duplicates(self):
        g = Graph.from_edges([0, 1, 0], [1, 0, 1])
        assert g.num_edges == 1

    def test_dedup_directed_keeps_both_directions(self):
        g = Graph.from_edges([0, 1], [1, 0], directed=True)
        assert g.num_edges == 2

    def test_self_loops_dropped_by_default(self):
        g = Graph.from_edges([0, 1], [0, 2])
        assert g.num_edges == 1

    def test_self_loops_kept_on_request(self):
        g = Graph.from_edges([0, 1], [0, 2], drop_self_loops=False,
                             dedup=False)
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = Graph.from_edges([], [], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.density == 0.0

    def test_from_edge_list(self):
        el = EdgeList(
            src=np.array([0, 1]), dst=np.array([1, 2]), num_vertices=5
        )
        g = Graph.from_edge_list(el)
        assert g.num_vertices == 5
        assert g.num_edges == 2

    def test_edge_list_validates_shapes(self):
        with pytest.raises(GraphFormatError):
            EdgeList(src=np.array([0, 1]), dst=np.array([1]))

    def test_from_arrays_roundtrip(self):
        g = path_graph(6)
        g2 = Graph.from_arrays(g.indptr, g.indices, directed=False)
        assert g == g2

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph.from_arrays(np.array([0, 5]), np.array([1]), directed=True)


class TestAccessors:
    def test_neighbors_sorted(self, k5):
        assert np.array_equal(k5.neighbors(2), [0, 1, 3, 4])

    def test_degrees(self, path5):
        assert np.array_equal(path5.out_degrees(), [1, 2, 2, 2, 1])

    def test_in_degrees_directed(self):
        g = Graph.from_edges([0, 1, 2], [2, 2, 0], directed=True)
        assert np.array_equal(g.in_degrees(), [1, 0, 2])

    def test_in_neighbors_directed(self):
        g = Graph.from_edges([0, 1], [2, 2], directed=True)
        assert np.array_equal(np.sort(g.in_neighbors(2)), [0, 1])
        assert g.in_neighbors(0).size == 0

    def test_has_edge(self, path5):
        assert path5.has_edge(1, 2)
        assert not path5.has_edge(0, 4)

    def test_has_edge_directed_asymmetric(self):
        g = Graph.from_edges([0], [1], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_weight(self):
        g = Graph.from_edges([0], [1], weights=[2.5])
        assert g.edge_weight(0, 1) == pytest.approx(2.5)
        with pytest.raises(GraphStructureError):
            g.edge_weight(0, 0)

    def test_edge_weight_requires_weights(self, path5):
        with pytest.raises(GraphStructureError):
            path5.edge_weight(0, 1)

    def test_edges_iterator_counts_each_once(self, k5):
        edges = list(k5.edges())
        assert len(edges) == 10
        assert all(u <= v for u, v in edges)

    def test_edge_arrays_logical(self, k5):
        src, dst, w = k5.edge_arrays()
        assert src.shape[0] == 10
        assert w is None

    def test_density_complete(self, k5):
        assert k5.density == pytest.approx(1.0)

    def test_memory_bytes_positive(self, k5):
        assert k5.memory_bytes() > 0

    def test_repr(self, k5):
        assert "n=5" in repr(k5)
        assert "m=10" in repr(k5)


class TestTransformations:
    def test_to_undirected(self):
        g = Graph.from_edges([0, 1], [1, 2], directed=True)
        u = g.to_undirected()
        assert not u.directed
        assert u.num_edges == 2
        assert u.has_edge(1, 0)

    def test_to_undirected_identity(self, path5):
        assert path5.to_undirected() is path5

    def test_with_weights(self, path5):
        w = path5.with_weights(np.arange(1.0, 5.0))
        assert w.is_weighted
        assert w.num_edges == path5.num_edges
        assert w.edge_weight(0, 1) == pytest.approx(1.0)

    def test_with_weights_validates_length(self, path5):
        with pytest.raises(GraphFormatError):
            path5.with_weights(np.ones(3))

    def test_subgraph_relabels(self, k5):
        sub = k5.subgraph([1, 3, 4])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # triangle

    def test_subgraph_out_of_range(self, k5):
        import pytest
        with pytest.raises(GraphFormatError):
            k5.subgraph([0, 99])

    def test_subgraph_keeps_weights(self):
        g = Graph.from_edges([0, 1, 2], [1, 2, 3],
                             weights=[1.0, 2.0, 3.0])
        sub = g.subgraph([1, 2])
        assert sub.edge_weight(0, 1) == pytest.approx(2.0)

    def test_equality_and_inequality(self, path5):
        assert path5 == path_graph(5)
        assert path5 != path_graph(6)


class TestSelfLoopStorage:
    """Regressions for the undirected self-loop double-storage bug:
    with ``drop_self_loops=False`` the src/dst mirror used to store a
    loop in two CSR slots, so edge_arrays()/round-trips counted it
    twice, violating the documented "counted once" invariant."""

    def _loopy(self, **kwargs):
        # edges: loop (1,1), plus (0,1) and (1,2)
        return Graph.from_edges(
            [1, 0, 1], [1, 1, 2], drop_self_loops=False, **kwargs
        )

    def test_loop_occupies_one_slot(self):
        g = self._loopy()
        assert np.array_equal(g.neighbors(1), [0, 1, 2])
        assert g.degree(1) == 3

    def test_edge_arrays_yield_loop_once(self):
        g = self._loopy()
        src, dst, _ = g.edge_arrays()
        assert src.shape[0] == g.num_edges == 3
        assert int(((src == 1) & (dst == 1)).sum()) == 1

    def test_edges_iterator_yields_loop_once(self):
        g = self._loopy()
        assert sorted(g.edges()) == [(0, 1), (1, 1), (1, 2)]

    def test_with_weights_round_trip_preserves_edge_count(self):
        g = self._loopy()
        w = g.with_weights(np.arange(1.0, 4.0))
        assert w.num_edges == g.num_edges == 3
        assert w.edge_weight(1, 1) > 0

    def test_to_undirected_round_trip_preserves_edge_count(self):
        g = Graph.from_edges(
            [1, 0, 2], [1, 1, 1], directed=True, drop_self_loops=False
        )
        u = g.to_undirected()
        assert u.num_edges == 3
        assert sorted(u.edges()) == [(0, 1), (1, 1), (1, 2)]
        assert u.to_undirected().num_edges == 3

    def test_weighted_loop_keeps_single_weight(self):
        g = Graph.from_edges(
            [0, 0], [0, 1], weights=[5.0, 1.0], drop_self_loops=False
        )
        assert g.edge_weight(0, 0) == pytest.approx(5.0)
        _, _, w = g.edge_arrays()
        assert w.shape[0] == 2


class TestEdgeWeightLookup:
    def test_binary_search_on_sorted_adjacency(self, monkeypatch):
        """Regression: edge_weight used a full np.nonzero scan even on
        sorted adjacency; it must take the binary-search path."""
        g = Graph.from_edges(
            [0, 0, 0, 2], [1, 2, 3, 3],
            weights=[1.0, 2.0, 3.0, 4.0], directed=True
        )
        assert g._adjacency_sorted()
        monkeypatch.setattr(np, "nonzero", lambda *a, **k: pytest.fail(
            "edge_weight scanned instead of binary-searching"
        ))
        assert g.edge_weight(0, 2) == pytest.approx(2.0)
        assert g.edge_weight(2, 3) == pytest.approx(4.0)
        with pytest.raises(GraphStructureError):
            g.edge_weight(0, 0)

    def test_linear_fallback_on_unsorted_adjacency(self):
        indptr = np.array([0, 2, 2])
        indices = np.array([1, 0])  # block [1, 0] is unsorted
        g = Graph.from_arrays(
            indptr, indices, weights=np.array([7.0, 8.0]),
            directed=True, num_edges=2,
        )
        assert not g._adjacency_sorted()
        assert g.edge_weight(0, 0) == pytest.approx(8.0)

    def test_matches_has_edge_on_weighted_directed_graph(self):
        rng = np.random.default_rng(11)
        src = rng.integers(0, 40, size=300)
        dst = rng.integers(0, 40, size=300)
        w = rng.uniform(0.1, 2.0, size=300)
        g = Graph.from_edges(src, dst, weights=w, directed=True)
        s, d, wts = g.edge_arrays()
        for u, v, expect in zip(s[:50], d[:50], wts[:50]):
            assert g.edge_weight(int(u), int(v)) == pytest.approx(expect)
