"""Additional edge-case tests for statistics and distance utilities."""

import numpy as np
import pytest

from repro.core import (
    Graph,
    approximate_diameter,
    average_clustering,
    community_statistics,
    detect_communities,
    effective_diameter,
    empty_graph,
    exact_diameter,
    global_clustering,
    star_graph,
    summarize,
    triangle_count,
)


class TestDegenerateGraphs:
    def test_empty_graph_statistics(self):
        g = empty_graph(10)
        assert exact_diameter(g) == 0
        assert triangle_count(g) == 0
        assert average_clustering(g) == 0.0
        assert global_clustering(g) == 0.0

    def test_zero_vertex_graph(self):
        g = Graph.from_edges([], [], num_vertices=0)
        summary = summarize(g)
        assert summary.num_vertices == 0
        assert summary.average_degree == 0.0

    def test_single_edge(self):
        g = Graph.from_edges([0], [1])
        assert exact_diameter(g) == 1
        assert effective_diameter(g) == pytest.approx(1.0)

    def test_self_contained_component_diameter(self):
        # diameter operates on the largest component
        g = Graph.from_edges([0, 1, 3], [1, 2, 4], num_vertices=5)
        assert exact_diameter(g) == 2
        assert approximate_diameter(g) == 2


class TestCommunityEdgeCases:
    def test_empty_graph_communities(self):
        comms = detect_communities(empty_graph(4))
        assert len(comms) == 4  # singletons

    def test_star_is_one_community(self):
        comms = detect_communities(star_graph(8))
        assert comms[0].size == 8

    def test_single_vertex_community_statistics(self):
        g = star_graph(5)
        stats = community_statistics(g, np.array([1]))
        assert stats.size == 1
        assert stats.cc == 0.0
        assert stats.diameter == 0

    def test_community_statistics_pair(self):
        g = Graph.from_edges([0], [1], num_vertices=4)
        stats = community_statistics(g, np.array([0, 1]))
        assert stats.diameter == 1
        assert stats.bridge_ratio == pytest.approx(1.0)
        assert stats.conductance == 0.0  # no edges leave the pair


class TestDiameterEstimation:
    def test_approximate_never_exceeds_exact(self):
        from repro.core import random_graph
        for seed in range(5):
            g = random_graph(80, 200, seed=seed)
            assert approximate_diameter(g, sweeps=4) <= exact_diameter(g)

    def test_more_sweeps_never_worse(self):
        from repro.core import random_graph
        g = random_graph(150, 350, seed=9)
        few = approximate_diameter(g, sweeps=1)
        many = approximate_diameter(g, sweeps=8)
        assert many >= few
