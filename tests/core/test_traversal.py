"""Tests for BFS and connectivity primitives."""

import numpy as np

from repro.core import (
    Graph,
    bfs_levels,
    bfs_order,
    connected_components,
    cycle_graph,
    eccentricity,
    grid_graph,
    largest_component,
    path_graph,
    random_graph,
)


def test_bfs_levels_path():
    levels = bfs_levels(path_graph(5), 0)
    assert np.array_equal(levels, [0, 1, 2, 3, 4])


def test_bfs_levels_unreachable():
    g = Graph.from_edges([0], [1], num_vertices=4)
    levels = bfs_levels(g, 0)
    assert levels[1] == 1
    assert levels[2] == -1
    assert levels[3] == -1


def test_bfs_levels_directed_respects_direction():
    g = Graph.from_edges([0, 1], [1, 2], directed=True)
    assert np.array_equal(bfs_levels(g, 0), [0, 1, 2])
    assert np.array_equal(bfs_levels(g, 2), [-1, -1, 0])


def test_bfs_order_levels_monotone(medium_graph):
    order = bfs_order(medium_graph, 0)
    levels = bfs_levels(medium_graph, 0)
    assert np.all(np.diff(levels[order]) >= 0)


def test_eccentricity_cycle():
    assert eccentricity(cycle_graph(8), 0) == 4


def test_connected_components_labels(two_components):
    labels = connected_components(two_components)
    assert labels[0] == labels[1] == labels[2] == 0
    assert labels[3] == labels[4] == 3
    assert labels[5] == 5


def test_connected_components_directed_weak():
    g = Graph.from_edges([0, 2], [1, 1], directed=True)
    labels = connected_components(g)
    assert labels[0] == labels[1] == labels[2]


def test_connected_components_long_path():
    # Pointer jumping must converge on a 500-vertex path quickly.
    labels = connected_components(path_graph(500))
    assert np.all(labels == 0)


def test_largest_component(two_components):
    assert np.array_equal(largest_component(two_components), [0, 1, 2])


def test_grid_fully_connected():
    labels = connected_components(grid_graph(5, 5))
    assert np.unique(labels).size == 1


def test_bfs_matches_grid_manhattan():
    g = grid_graph(4, 4)
    levels = bfs_levels(g, 0)
    for r in range(4):
        for c in range(4):
            assert levels[r * 4 + c] == r + c
