"""Tests for the convenience graph constructors."""

import numpy as np
import pytest

from repro.core import (
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.errors import GeneratorParameterError


def test_empty_graph():
    g = empty_graph(7)
    assert g.num_vertices == 7
    assert g.num_edges == 0


def test_path_graph_edges():
    g = path_graph(4)
    assert g.num_edges == 3
    assert g.has_edge(2, 3)


def test_path_graph_weighted():
    g = path_graph(4, weighted=True)
    assert g.is_weighted
    assert g.edge_weight(0, 1) == pytest.approx(1.0)


def test_path_graph_single_vertex():
    assert path_graph(1).num_edges == 0


def test_cycle_graph():
    g = cycle_graph(5)
    assert g.num_edges == 5
    assert np.all(g.out_degrees() == 2)


def test_cycle_rejects_small():
    with pytest.raises(GeneratorParameterError):
        cycle_graph(2)


def test_star_graph():
    g = star_graph(6)
    assert g.degree(0) == 5
    assert g.degree(3) == 1


def test_star_tiny():
    assert star_graph(1).num_edges == 0


def test_complete_graph_undirected():
    g = complete_graph(6)
    assert g.num_edges == 15


def test_complete_graph_directed():
    g = complete_graph(4, directed=True)
    assert g.num_edges == 12


def test_grid_graph():
    g = grid_graph(3, 4)
    assert g.num_vertices == 12
    # 3*(4-1) horizontal + (3-1)*4 vertical
    assert g.num_edges == 9 + 8


def test_random_graph_deterministic():
    a = random_graph(50, 100, seed=5)
    b = random_graph(50, 100, seed=5)
    assert a == b


def test_random_graph_seed_changes_output():
    a = random_graph(50, 100, seed=5)
    b = random_graph(50, 100, seed=6)
    assert a != b


def test_random_graph_weighted():
    g = random_graph(30, 60, seed=1, weighted=True)
    assert g.is_weighted
    assert np.all(g.weights > 0)


def test_negative_sizes_rejected():
    with pytest.raises(GeneratorParameterError):
        path_graph(-1)
    with pytest.raises(GeneratorParameterError):
        random_graph(-1, 5)
