"""Tests for the DeltaCSR edge-insertion overlay."""

import numpy as np
import pytest

from repro.core.delta import DeltaCSR, empty_csr_graph
from repro.core.graph import Graph
from repro.datagen.fft import FFTDG, FFTDGConfig
from repro.errors import GraphFormatError


def _fft_graph(n=120, seed=4):
    return FFTDG(FFTDGConfig(num_vertices=n, alpha=20.0, seed=seed)).generate().graph


class TestConstruction:
    def test_needs_base_or_size(self):
        with pytest.raises(GraphFormatError):
            DeltaCSR()

    def test_empty_base(self):
        cursor = DeltaCSR(num_vertices=5)
        assert cursor.num_vertices == 5
        assert cursor.num_edges == 0
        assert cursor.materialize().num_edges == 0

    def test_rejects_directed_base(self):
        g = Graph.from_edges(np.array([0]), np.array([1]), num_vertices=3, directed=True)
        with pytest.raises(GraphFormatError):
            DeltaCSR(g)

    def test_empty_csr_graph_shape(self):
        g = empty_csr_graph(7)
        assert g.num_vertices == 7
        assert g.num_edges == 0
        assert not g.directed


class TestApplyBatch:
    def test_matches_from_edges(self):
        cursor = DeltaCSR(num_vertices=6)
        src = np.array([0, 1, 2, 4])
        dst = np.array([1, 2, 3, 5])
        frontier = cursor.apply_batch(src, dst)
        expected = Graph.from_edges(src, dst, num_vertices=6, directed=False)
        got = cursor.materialize()
        assert np.array_equal(got.indptr, expected.indptr)
        assert np.array_equal(got.indices, expected.indices)
        assert np.array_equal(frontier, np.unique(np.concatenate([src, dst])))

    def test_duplicates_and_self_loops_dropped(self):
        cursor = DeltaCSR(num_vertices=4)
        cursor.apply_batch(np.array([0]), np.array([1]))
        frontier = cursor.apply_batch(
            np.array([1, 0, 2, 2]), np.array([0, 1, 2, 2])
        )
        assert frontier.size == 0
        assert cursor.num_edges == 1
        assert cursor.last_applied[0].size == 0

    def test_empty_batch(self):
        cursor = DeltaCSR(num_vertices=3)
        frontier = cursor.apply_batch(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert frontier.size == 0
        assert cursor.last_applied[0].size == 0

    def test_rejects_out_of_range(self):
        cursor = DeltaCSR(num_vertices=3)
        with pytest.raises(GraphFormatError):
            cursor.apply_batch(np.array([0]), np.array([3]))
        with pytest.raises(GraphFormatError):
            cursor.apply_batch(np.array([-1]), np.array([1]))

    def test_rejects_shape_mismatch(self):
        cursor = DeltaCSR(num_vertices=3)
        with pytest.raises(GraphFormatError):
            cursor.apply_batch(np.array([0, 1]), np.array([1]))

    def test_last_applied_canonical(self):
        cursor = DeltaCSR(num_vertices=5)
        cursor.apply_batch(np.array([3, 1]), np.array([0, 4]))
        a, b = cursor.last_applied
        assert np.array_equal(a, np.minimum(a, b))
        assert set(zip(a.tolist(), b.tolist())) == {(0, 3), (1, 4)}


class TestOverlayViews:
    def test_neighbors_and_has_edge_merge_base_and_delta(self):
        base = Graph.from_edges(np.array([0]), np.array([1]),
                                num_vertices=5, directed=False)
        cursor = DeltaCSR(base)
        cursor.apply_batch(np.array([0, 2]), np.array([3, 4]))
        assert np.array_equal(cursor.neighbors(0), np.array([1, 3]))
        assert cursor.has_edge(0, 1) and cursor.has_edge(3, 0)
        assert cursor.has_edge(2, 4) and not cursor.has_edge(1, 2)
        assert np.array_equal(
            cursor.degrees(), np.array([2, 1, 1, 1, 1])
        )

    def test_base_untouched(self):
        base = Graph.from_edges(np.array([0]), np.array([1]),
                                num_vertices=4, directed=False)
        indptr_before = base.indptr.copy()
        cursor = DeltaCSR(base)
        cursor.apply_batch(np.array([2]), np.array([3]))
        cursor.materialize()
        assert np.array_equal(base.indptr, indptr_before)
        assert base.num_edges == 1


class TestRebase:
    def test_stream_replay_matches_full_rebuild(self):
        graph = _fft_graph()
        src, dst, _ = graph.edge_arrays()
        rng = np.random.default_rng(0)
        order = rng.permutation(src.size)
        src, dst = src[order], dst[order]
        cursor = DeltaCSR(num_vertices=graph.num_vertices)
        bounds = np.linspace(0, src.size, 6).astype(np.int64)
        for t in range(5):
            cursor.apply_batch(src[bounds[t]:bounds[t + 1]],
                               dst[bounds[t]:bounds[t + 1]])
            snap = cursor.rebase()
            expected = Graph.from_edges(
                src[:bounds[t + 1]], dst[:bounds[t + 1]],
                num_vertices=graph.num_vertices,
                directed=False,
            )
            assert np.array_equal(snap.indptr, expected.indptr), f"window {t}"
            assert np.array_equal(snap.indices, expected.indices)
            assert cursor.delta_edges == 0

    def test_total_applied_survives_rebase(self):
        cursor = DeltaCSR(num_vertices=4)
        cursor.apply_batch(np.array([0]), np.array([1]))
        cursor.rebase()
        cursor.apply_batch(np.array([2]), np.array([3]))
        assert cursor.total_applied == 2
        assert cursor.num_edges == 2
