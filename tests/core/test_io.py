"""Tests for edge-list and binary graph serialization."""

import io

import numpy as np
import pytest

from repro.core import (
    Graph,
    load_binary,
    random_graph,
    read_edge_list,
    save_binary,
    write_edge_list,
)
from repro.errors import GraphFormatError


def test_edge_list_roundtrip(tmp_path):
    g = random_graph(40, 120, seed=2)
    path = tmp_path / "graph.e"
    write_edge_list(g, path)
    g2 = read_edge_list(path, num_vertices=g.num_vertices)
    assert g == g2


def test_edge_list_weighted_roundtrip(tmp_path):
    g = random_graph(30, 60, seed=4, weighted=True)
    path = tmp_path / "graph.e"
    write_edge_list(g, path)
    g2 = read_edge_list(path, num_vertices=g.num_vertices)
    assert g2.is_weighted
    src, dst, w = g.edge_arrays()
    src2, dst2, w2 = g2.edge_arrays()
    assert np.array_equal(src, src2)
    assert np.allclose(w, w2, rtol=1e-4)


def test_read_from_text_handle():
    text = io.StringIO("# comment\n0 1\n1 2\n\n2 3\n")
    g = read_edge_list(text)
    assert g.num_edges == 3


def test_read_rejects_inconsistent_fields():
    text = io.StringIO("0 1\n1 2 3.5\n")
    with pytest.raises(GraphFormatError):
        read_edge_list(text)


def test_read_rejects_garbage():
    text = io.StringIO("a b\n")
    with pytest.raises(GraphFormatError):
        read_edge_list(text)


def test_read_rejects_wrong_field_count():
    text = io.StringIO("0 1 2 3\n")
    with pytest.raises(GraphFormatError):
        read_edge_list(text)


def test_header_written(tmp_path):
    g = random_graph(10, 20, seed=0)
    path = tmp_path / "g.e"
    write_edge_list(g, path)
    first = path.read_text().splitlines()[0]
    assert first.startswith("#")
    assert "undirected" in first


def test_binary_roundtrip(tmp_path):
    g = random_graph(60, 200, seed=9, weighted=True)
    path = tmp_path / "g.npz"
    save_binary(g, path)
    g2 = load_binary(path)
    assert g == g2
    assert g2.num_edges == g.num_edges


def test_binary_directed_roundtrip(tmp_path):
    g = random_graph(30, 80, seed=1, directed=True)
    path = tmp_path / "g.npz"
    save_binary(g, path)
    g2 = load_binary(path)
    assert g2.directed
    assert g == g2


def test_binary_rejects_foreign_archive(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(path, magic=np.frombuffer(b"nope", dtype=np.uint8))
    with pytest.raises(GraphFormatError):
        load_binary(path)
