"""Tests for community detection and per-community statistics."""

import numpy as np
import pytest

from repro.core import (
    COMMUNITY_STATISTIC_NAMES,
    Graph,
    community_statistics,
    complete_graph,
    detect_communities,
    path_graph,
    statistic_distributions,
)
from repro.datagen import livejournal_surrogate


@pytest.fixture
def two_cliques() -> Graph:
    """Two K4s joined by one bridge edge."""
    src = [0, 0, 0, 1, 1, 2, 4, 4, 4, 5, 5, 6, 3]
    dst = [1, 2, 3, 2, 3, 3, 5, 6, 7, 6, 7, 7, 4]
    return Graph.from_edges(src, dst)


def test_detect_communities_partitions_vertices(two_cliques):
    comms = detect_communities(two_cliques)
    covered = np.sort(np.concatenate(comms))
    assert np.array_equal(covered, np.arange(8))


def test_detect_communities_finds_cliques(two_cliques):
    comms = detect_communities(two_cliques)
    as_sets = [set(c.tolist()) for c in comms]
    assert {0, 1, 2, 3} in as_sets
    assert {4, 5, 6, 7} in as_sets


def test_community_statistics_clique(two_cliques):
    stats = community_statistics(two_cliques, np.array([0, 1, 2, 3]))
    assert stats.cc == pytest.approx(1.0)
    assert stats.tpr == pytest.approx(1.0)
    assert stats.diameter == 1
    assert stats.size == 4
    # one bridge edge out of 13 total slots... conductance = cut / vol
    assert 0 < stats.conductance < 0.2
    assert stats.bridge_ratio == 0.0


def test_community_statistics_path():
    g = path_graph(6)
    stats = community_statistics(g, np.arange(6))
    assert stats.cc == 0.0
    assert stats.tpr == 0.0
    assert stats.bridge_ratio == pytest.approx(1.0)  # every path edge is a bridge
    assert stats.diameter == 5
    assert stats.conductance == 0.0  # whole graph


def test_bridge_ratio_cycle_zero():
    from repro.core import cycle_graph
    stats = community_statistics(cycle_graph(6), np.arange(6))
    assert stats.bridge_ratio == 0.0


def test_statistic_distributions_keys(two_cliques):
    dists = statistic_distributions(two_cliques, min_size=3)
    assert set(dists) == set(COMMUNITY_STATISTIC_NAMES)
    for values in dists.values():
        assert values.shape[0] == 2  # two K4 communities


def test_statistic_distributions_min_size_filter():
    g = Graph.from_edges([0, 2], [1, 3], num_vertices=4)
    dists = statistic_distributions(g, min_size=3)
    assert dists["size"].size == 0


def test_surrogate_has_many_communities():
    g = livejournal_surrogate(600, seed=7).graph
    comms = detect_communities(g)
    big = [c for c in comms if c.size >= 3]
    assert len(big) >= 5
