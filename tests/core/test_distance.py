"""Tests for distribution distances and rank statistics."""

import numpy as np
import pytest

from repro.core import (
    distribution_divergence,
    histogram_distribution,
    jensen_shannon_divergence,
    relative_difference,
    spearman_rho,
)
from repro.errors import BenchmarkError


class TestHistogram:
    def test_normalizes(self):
        h = histogram_distribution(np.array([1.0, 1.0, 2.0, 3.0]), bins=3)
        assert h.sum() == pytest.approx(1.0)

    def test_empty_gives_uniform(self):
        h = histogram_distribution(np.array([]), bins=4)
        assert np.allclose(h, 0.25)

    def test_rejects_bad_bins(self):
        with pytest.raises(BenchmarkError):
            histogram_distribution(np.array([1.0]), bins=0)


class TestJensenShannon:
    def test_identical_is_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert jensen_shannon_divergence(p, q) == pytest.approx(1.0)

    def test_symmetric(self):
        p = np.array([0.7, 0.2, 0.1])
        q = np.array([0.1, 0.5, 0.4])
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p)
        )

    def test_renormalizes_counts(self):
        p = np.array([2.0, 3.0, 5.0])
        q = np.array([0.2, 0.3, 0.5])
        assert jensen_shannon_divergence(p, q) == pytest.approx(0.0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(BenchmarkError):
            jensen_shannon_divergence(np.array([1.0]), np.array([0.5, 0.5]))

    def test_rejects_zero_mass(self):
        with pytest.raises(BenchmarkError):
            jensen_shannon_divergence(np.zeros(3), np.ones(3))


class TestDistributionDivergence:
    def test_same_samples_zero(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert distribution_divergence(a, a) == pytest.approx(0.0)

    def test_shifted_samples_positive(self):
        a = np.random.default_rng(0).normal(0, 1, 200)
        b = np.random.default_rng(1).normal(5, 1, 200)
        assert distribution_divergence(a, b) > 0.5

    def test_both_empty(self):
        assert distribution_divergence(np.array([]), np.array([])) == 0.0

    def test_constant_samples(self):
        a = np.full(5, 2.0)
        assert distribution_divergence(a, a) == pytest.approx(0.0)


class TestSpearman:
    def test_perfect_agreement(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rho(x, x * 10) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rho(x, -x) == pytest.approx(-1.0)

    def test_ties_averaged(self):
        x = np.array([1.0, 1.0, 2.0])
        y = np.array([1.0, 2.0, 3.0])
        rho = spearman_rho(x, y)
        assert -1.0 <= rho <= 1.0

    def test_known_value(self):
        # Classic example: one swap among four.
        rho = spearman_rho(np.array([1, 2, 3, 4.0]), np.array([1, 3, 2, 4.0]))
        assert rho == pytest.approx(0.8)

    def test_rejects_short_input(self):
        with pytest.raises(BenchmarkError):
            spearman_rho(np.array([1.0]), np.array([2.0]))

    def test_rejects_mismatch(self):
        with pytest.raises(BenchmarkError):
            spearman_rho(np.array([1.0, 2.0]), np.array([1.0]))


class TestRelativeDifference:
    def test_basic(self):
        assert relative_difference(11.0, 10.0) == pytest.approx(0.1)

    def test_symmetric_sign(self):
        assert relative_difference(9.0, 10.0) == pytest.approx(0.1)

    def test_rejects_zero_reference(self):
        with pytest.raises(BenchmarkError):
            relative_difference(1.0, 0.0)
