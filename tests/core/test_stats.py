"""Tests for whole-graph statistics."""

import numpy as np
import pytest

from repro.core import (
    Graph,
    approximate_diameter,
    average_clustering,
    complete_graph,
    cycle_graph,
    degree_histogram,
    effective_diameter,
    exact_diameter,
    global_clustering,
    grid_graph,
    local_clustering,
    path_graph,
    power_law_exponent,
    random_graph,
    star_graph,
    summarize,
    triangle_count,
)
from repro.datagen import barabasi_albert


def test_exact_diameter_path():
    assert exact_diameter(path_graph(10)) == 9


def test_exact_diameter_complete():
    assert exact_diameter(complete_graph(6)) == 1


def test_exact_diameter_grid():
    assert exact_diameter(grid_graph(3, 5)) == 2 + 4


def test_approximate_diameter_matches_exact_on_small(medium_graph):
    approx = approximate_diameter(medium_graph, sweeps=6)
    exact = exact_diameter(medium_graph)
    assert approx <= exact
    assert approx >= exact - 1  # double sweep is near-exact on small graphs


def test_approximate_diameter_empty():
    assert approximate_diameter(Graph.from_edges([], [], num_vertices=3)) == 0


def test_effective_diameter_small_world():
    g = complete_graph(20)
    assert effective_diameter(g) == pytest.approx(1.0)


def test_local_clustering_triangle_plus_tail():
    # Triangle 0-1-2 with pendant 3 attached to 2.
    g = Graph.from_edges([0, 1, 2, 2], [1, 2, 0, 3])
    cc = local_clustering(g)
    assert cc[0] == pytest.approx(1.0)
    assert cc[2] == pytest.approx(1.0 / 3.0)
    assert cc[3] == 0.0


def test_average_clustering_complete(k5):
    assert average_clustering(k5) == pytest.approx(1.0)


def test_average_clustering_star():
    assert average_clustering(star_graph(8)) == 0.0


def test_global_clustering_triangle():
    g = cycle_graph(3)
    assert global_clustering(g) == pytest.approx(1.0)


def test_global_clustering_star_zero():
    assert global_clustering(star_graph(6)) == 0.0


def test_triangle_count_known_values(k5):
    assert triangle_count(k5) == 10
    assert triangle_count(cycle_graph(5)) == 0
    assert triangle_count(grid_graph(3, 3)) == 0


def test_degree_histogram(path5):
    hist = degree_histogram(path5)
    assert hist[1] == 2
    assert hist[2] == 3


def test_degree_histogram_empty():
    hist = degree_histogram(Graph.from_edges([], [], num_vertices=0))
    assert hist.sum() == 0


def test_power_law_exponent_on_ba_graph():
    g = barabasi_albert(800, 3, seed=1).graph
    alpha = power_law_exponent(g)
    assert 1.8 < alpha < 3.8  # BA graphs have exponent ~3


def test_power_law_exponent_degenerate():
    assert np.isnan(power_law_exponent(path_graph(2)))


def test_summarize_row(medium_graph):
    summary = summarize(medium_graph)
    row = summary.as_row()
    assert row["n"] == 200
    assert row["m"] == medium_graph.num_edges
    assert 0 < row["density"] < 1
    assert row["diameter"] >= 1
