"""Tests for graph partitioners."""

import numpy as np
import pytest

from repro.core import (
    Partition,
    block_partition,
    edge_cut,
    hash_partition,
    load_imbalance,
    path_graph,
    random_graph,
    range_partition,
)
from repro.errors import ClusterConfigError


def test_hash_partition_covers_all_parts(medium_graph):
    p = hash_partition(medium_graph, 8)
    assert np.unique(p.owner).size == 8


def test_hash_partition_deterministic(medium_graph):
    a = hash_partition(medium_graph, 8)
    b = hash_partition(medium_graph, 8)
    assert np.array_equal(a.owner, b.owner)


def test_hash_partition_roughly_balanced(medium_graph):
    p = hash_partition(medium_graph, 4)
    sizes = p.sizes()
    assert sizes.max() < 2 * sizes.min()


def test_range_partition_contiguous():
    g = path_graph(100)
    p = range_partition(g, 4)
    assert np.all(np.diff(p.owner) >= 0)
    assert np.array_equal(p.sizes(), [25, 25, 25, 25])


def test_range_partition_uneven():
    g = path_graph(10)
    p = range_partition(g, 3)
    assert p.sizes().sum() == 10
    assert p.owner.max() == 2


def test_block_partition_members():
    g = path_graph(12)
    partition, blocks = block_partition(g, 3)
    assert len(blocks) == 3
    assert np.array_equal(blocks[0], np.arange(4))


def test_edge_cut_path_range():
    g = path_graph(100)
    p = range_partition(g, 4)
    assert edge_cut(g, p) == 3  # only the three boundary edges


def test_edge_cut_hash_much_larger(medium_graph):
    cut_hash = edge_cut(medium_graph, hash_partition(medium_graph, 8))
    assert cut_hash > medium_graph.num_edges * 0.5


def test_load_imbalance_balanced():
    g = path_graph(64)
    assert load_imbalance(g, range_partition(g, 4)) == pytest.approx(
        1.0, abs=0.1
    )


def test_partition_members(medium_graph):
    p = hash_partition(medium_graph, 4)
    total = sum(p.members(i).size for i in range(4))
    assert total == medium_graph.num_vertices


def test_invalid_num_parts():
    g = path_graph(5)
    with pytest.raises(ClusterConfigError):
        hash_partition(g, 0)
    with pytest.raises(ClusterConfigError):
        range_partition(g, 0)


def test_partition_validates_owner_range():
    with pytest.raises(ClusterConfigError):
        Partition(owner=np.array([0, 5]), num_parts=2)
