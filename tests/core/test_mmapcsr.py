"""Unit tests for the on-disk mmap-CSR container.

Covers the roundtrip contract (write → open → identical arrays,
zero-copy memmap backing, read-only views), digest determinism, the
streaming writer's invariants, and the reader's rejection of corrupt,
truncated, or wrong-version files.
"""

import hashlib

import numpy as np
import pytest

from repro.core import Graph, random_graph
from repro.core.mmapcsr import (
    CSR_MAGIC,
    HEADER_BYTES,
    CSRStreamWriter,
    open_graph_csr,
    read_csr_header,
    write_graph_csr,
)
from repro.errors import GraphFormatError


def _mmap_backed(array: np.ndarray) -> bool:
    a = array
    while a is not None:
        if isinstance(a, np.memmap):
            return True
        a = a.base
    return False


@pytest.fixture
def graph():
    return random_graph(200, 800, seed=11)


class TestRoundtrip:
    def test_arrays_identical(self, graph, tmp_path):
        path = tmp_path / "g.csr"
        write_graph_csr(graph, path)
        loaded, header = open_graph_csr(path)
        assert np.array_equal(loaded.indptr, graph.indptr)
        assert np.array_equal(loaded.indices, graph.indices)
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.num_edges == graph.num_edges
        assert loaded.directed == graph.directed
        assert header["format"] == CSR_MAGIC
        assert header["slots"] == graph.indices.shape[0]

    def test_weighted_roundtrip(self, tmp_path):
        g = Graph.from_edges(
            [0, 1, 2], [1, 2, 3], weights=[0.5, 1.5, 2.5], num_vertices=4
        )
        path = tmp_path / "w.csr"
        write_graph_csr(g, path)
        loaded, header = open_graph_csr(path, verify_digest=True)
        assert header["has_weights"] is True
        assert np.array_equal(loaded.weights, g.weights)

    def test_arrays_are_memmap_backed_and_read_only(self, graph, tmp_path):
        path = tmp_path / "g.csr"
        write_graph_csr(graph, path)
        loaded, _ = open_graph_csr(path)
        assert _mmap_backed(loaded.indptr)
        assert _mmap_backed(loaded.indices)
        assert not loaded.indices.flags.writeable
        with pytest.raises(ValueError):
            loaded.indices[0] = 99

    def test_meta_preserved(self, graph, tmp_path):
        path = tmp_path / "g.csr"
        write_graph_csr(graph, path, meta={"seed": 11, "generator": "test"})
        _, header = open_graph_csr(path)
        assert header["meta"] == {"seed": 11, "generator": "test"}

    def test_algorithms_run_on_memmap_graph(self, graph, tmp_path):
        # The point of validate=False loading: a read-only memmap graph
        # must be a drop-in for the in-memory one.
        path = tmp_path / "g.csr"
        write_graph_csr(graph, path)
        loaded, _ = open_graph_csr(path)
        for v in (0, 5, 199):
            assert np.array_equal(loaded.neighbors(v), graph.neighbors(v))
        assert loaded.degree(0) == graph.degree(0)


class TestDigest:
    def test_digest_deterministic(self, graph, tmp_path):
        d1 = write_graph_csr(graph, tmp_path / "a.csr")
        d2 = write_graph_csr(graph, tmp_path / "b.csr")
        assert d1 == d2
        assert (tmp_path / "a.csr").read_bytes() == \
            (tmp_path / "b.csr").read_bytes()

    def test_digest_reflects_content(self, tmp_path):
        g1 = random_graph(100, 300, seed=1)
        g2 = random_graph(100, 300, seed=2)
        assert write_graph_csr(g1, tmp_path / "a.csr") != \
            write_graph_csr(g2, tmp_path / "b.csr")

    def test_verify_digest_catches_flipped_bytes(self, graph, tmp_path):
        path = tmp_path / "g.csr"
        write_graph_csr(graph, path)
        open_graph_csr(path, verify_digest=True)  # clean file passes
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip a byte in the last indices slot
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphFormatError, match="digest mismatch"):
            open_graph_csr(path, verify_digest=True)


class TestStreamWriter:
    def test_chunked_append_equals_single_shot(self, graph, tmp_path):
        whole = tmp_path / "whole.csr"
        chunked = tmp_path / "chunked.csr"
        write_graph_csr(graph, whole)
        writer = CSRStreamWriter(chunked, graph.num_vertices)
        for start in range(0, graph.indices.shape[0], 37):
            writer.append_indices(graph.indices[start:start + 37])
        writer.finalize(graph.indptr, num_edges=graph.num_edges)
        assert whole.read_bytes() == chunked.read_bytes()

    def test_indptr_mismatch_rejected(self, tmp_path):
        writer = CSRStreamWriter(tmp_path / "g.csr", 4)
        writer.append_indices(np.array([1, 2, 3], dtype=np.int64))
        with pytest.raises(GraphFormatError, match="does not match"):
            writer.finalize(
                np.array([0, 1, 2, 3, 5], dtype=np.int64), num_edges=3
            )
        writer.abort()

    def test_abort_leaves_no_file(self, tmp_path):
        path = tmp_path / "g.csr"
        writer = CSRStreamWriter(path, 4)
        writer.append_indices(np.array([1], dtype=np.int64))
        writer.abort()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_atomic_write_no_temp_left_behind(self, graph, tmp_path):
        write_graph_csr(graph, tmp_path / "g.csr")
        assert [p.name for p in tmp_path.iterdir()] == ["g.csr"]

    def test_finalize_twice_rejected(self, tmp_path):
        writer = CSRStreamWriter(tmp_path / "g.csr", 1)
        writer.finalize(np.array([0, 0], dtype=np.int64), num_edges=0)
        with pytest.raises(GraphFormatError, match="already finalized"):
            writer.finalize(np.array([0, 0], dtype=np.int64), num_edges=0)


class TestReaderRejections:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.csr"
        path.write_bytes(b"not-a-csr-file\n" + b" " * HEADER_BYTES)
        with pytest.raises(GraphFormatError, match="unrecognized CSR magic"):
            read_csr_header(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.csr"
        path.write_bytes(CSR_MAGIC.encode() + b"\n{}")
        with pytest.raises(GraphFormatError, match="truncated CSR header"):
            read_csr_header(path)

    def test_truncated_body(self, graph, tmp_path):
        path = tmp_path / "g.csr"
        write_graph_csr(graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(GraphFormatError, match="truncated"):
            read_csr_header(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "g.csr"
        body = CSR_MAGIC + "\n" + '{"num_vertices": 1}' + "\n"
        path.write_bytes(body.encode().ljust(HEADER_BYTES, b" "))
        with pytest.raises(GraphFormatError, match="missing field"):
            read_csr_header(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError, match="cannot read"):
            read_csr_header(tmp_path / "absent.csr")
