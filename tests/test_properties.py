"""Property-based tests (hypothesis) on core data structures, generators,
and algorithm invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.reference import (
    bellman_ford,
    core_decomposition,
    dijkstra,
    k_clique_count,
    pagerank,
    triangle_count,
    wcc,
    wcc_union_find,
)
from repro.core import (
    Graph,
    bfs_levels,
    connected_components,
    jensen_shannon_divergence,
    spearman_rho,
)
from repro.core.partition import hash_partition, range_partition
from repro.datagen import generate_fft, generate_ldbc

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_n=40, max_m=120):
    """Random simple undirected graphs."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return Graph.from_edges(src, dst, num_vertices=n)


class TestGraphInvariants:
    @_settings
    @given(graphs())
    def test_degree_sum_is_twice_edges(self, g):
        assert int(g.out_degrees().sum()) == 2 * g.num_edges

    @_settings
    @given(graphs())
    def test_edge_arrays_roundtrip(self, g):
        src, dst, _ = g.edge_arrays()
        g2 = Graph.from_edges(src, dst, num_vertices=g.num_vertices)
        assert g == g2

    @_settings
    @given(graphs())
    def test_neighbors_symmetric(self, g):
        for u, v in g.edges():
            assert g.has_edge(v, u)

    @_settings
    @given(graphs())
    def test_subgraph_edge_subset(self, g):
        half = np.arange(0, g.num_vertices, 2)
        sub = g.subgraph(half)
        assert sub.num_edges <= g.num_edges
        assert sub.num_vertices == half.size


class TestTraversalInvariants:
    @_settings
    @given(graphs())
    def test_bfs_neighbor_levels_differ_by_one(self, g):
        levels = bfs_levels(g, 0)
        for u, v in g.edges():
            if levels[u] >= 0 and levels[v] >= 0:
                assert abs(levels[u] - levels[v]) <= 1

    @_settings
    @given(graphs())
    def test_wcc_implementations_agree(self, g):
        assert np.array_equal(wcc(g), wcc_union_find(g))

    @_settings
    @given(graphs())
    def test_wcc_labels_are_component_minima(self, g):
        labels = connected_components(g)
        for v in range(g.num_vertices):
            members = np.nonzero(labels == labels[v])[0]
            assert labels[v] == members.min()

    @_settings
    @given(graphs())
    def test_bfs_reachability_matches_components(self, g):
        levels = bfs_levels(g, 0)
        labels = connected_components(g)
        reachable = levels >= 0
        same_comp = labels == labels[0]
        assert np.array_equal(reachable, same_comp)


class TestAlgorithmInvariants:
    @_settings
    @given(graphs())
    def test_pagerank_is_distribution(self, g):
        ranks = pagerank(g)
        assert ranks.sum() == pytest_approx(1.0)
        assert np.all(ranks >= 0)

    @_settings
    @given(graphs())
    def test_sssp_oracles_agree(self, g):
        assert np.allclose(
            dijkstra(g, 0), bellman_ford(g, 0), equal_nan=True
        )

    @_settings
    @given(graphs())
    def test_coreness_bounded_by_degree(self, g):
        coreness = core_decomposition(g)
        assert np.all(coreness <= g.out_degrees())

    @_settings
    @given(graphs())
    def test_kc3_equals_triangles(self, g):
        assert k_clique_count(g, 3) == triangle_count(g)

    @_settings
    @given(graphs(max_n=20, max_m=60))
    def test_kc4_bounded_by_kc3_choose(self, g):
        # every 4-clique contains 4 triangles
        assert 4 * k_clique_count(g, 4) <= \
            max(1, k_clique_count(g, 3)) * 4 * max(1, triangle_count(g))


class TestGeneratorInvariants:
    @_settings
    @given(st.integers(8, 200), st.integers(0, 2 ** 20))
    def test_fft_trials_accounting(self, n, seed):
        result = generate_fft(n, seed=seed, connect_path=False,
                              use_homophily_order=False)
        counter = result.counter
        assert counter.edges == counter.trials - counter.failures
        assert counter.failures <= n  # one terminator per source at most

    @_settings
    @given(st.integers(8, 150), st.integers(0, 2 ** 20))
    def test_fft_connected_with_path(self, n, seed):
        g = generate_fft(n, seed=seed).graph
        assert np.unique(connected_components(g)).size == 1

    @_settings
    @given(st.integers(8, 120), st.integers(0, 2 ** 20))
    def test_ldbc_trials_at_least_edges(self, n, seed):
        result = generate_ldbc(n, seed=seed)
        assert result.counter.trials >= result.counter.edges
        assert result.graph.num_edges <= result.counter.edges


class TestPartitionInvariants:
    @_settings
    @given(graphs(), st.integers(1, 8))
    def test_partitions_cover_everything(self, g, parts):
        for partition in (hash_partition(g, parts), range_partition(g, parts)):
            assert partition.owner.shape[0] == g.num_vertices
            assert partition.sizes().sum() == g.num_vertices


class TestStatisticsInvariants:
    @_settings
    @given(st.lists(st.floats(0.01, 100.0), min_size=2, max_size=12),
           st.lists(st.floats(0.01, 100.0), min_size=2, max_size=12))
    def test_js_divergence_bounds(self, p, q):
        size = min(len(p), len(q))
        a = np.asarray(p[:size])
        b = np.asarray(q[:size])
        d = jensen_shannon_divergence(a, b)
        assert -1e-9 <= d <= 1.0 + 1e-9
        assert d == pytest_approx(jensen_shannon_divergence(b, a))

    @_settings
    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=15,
                    unique=True))
    def test_spearman_bounds_and_self(self, xs):
        x = np.asarray(xs)
        rho = spearman_rho(x, x)
        assert rho == pytest_approx(1.0)
        shuffled = x[::-1].copy()
        assert -1.0 - 1e-9 <= spearman_rho(x, shuffled) <= 1.0 + 1e-9


def pytest_approx(value, rel=1e-6, abs_=1e-9):
    import pytest
    return pytest.approx(value, rel=rel, abs=abs_)
