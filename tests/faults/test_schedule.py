"""Unit tests for FaultSchedule and its building blocks."""

import numpy as np
import pytest

from repro.errors import ClusterConfigError
from repro.faults import (
    EMPTY_SCHEDULE,
    FaultSchedule,
    MachineCrash,
    StragglerWindow,
)


class TestValidation:
    def test_negative_crash_superstep_rejected(self):
        with pytest.raises(ClusterConfigError):
            MachineCrash(superstep=-1, machine=0)

    def test_negative_crash_machine_rejected(self):
        with pytest.raises(ClusterConfigError):
            MachineCrash(superstep=0, machine=-1)

    def test_straggler_factor_below_one_rejected(self):
        with pytest.raises(ClusterConfigError):
            StragglerWindow(machine=0, factor=0.5)

    def test_straggler_window_must_end_after_start(self):
        with pytest.raises(ClusterConfigError):
            StragglerWindow(machine=0, factor=2.0,
                            start_superstep=3, end_superstep=3)

    def test_crash_supersteps_must_strictly_increase(self):
        with pytest.raises(ClusterConfigError):
            FaultSchedule(crashes=(
                MachineCrash(superstep=2, machine=0),
                MachineCrash(superstep=2, machine=1),
            ))

    def test_retransmit_rate_range(self):
        with pytest.raises(ClusterConfigError):
            FaultSchedule(retransmit_rate=1.0)
        with pytest.raises(ClusterConfigError):
            FaultSchedule(retransmit_rate=-0.1)

    def test_negative_transient_failures_rejected(self):
        with pytest.raises(ClusterConfigError):
            FaultSchedule(transient_failures=-1)


class TestValueSemantics:
    def test_hashable_and_equal(self):
        a = FaultSchedule(crashes=(MachineCrash(2, 1),), retransmit_rate=0.1)
        b = FaultSchedule(crashes=(MachineCrash(2, 1),), retransmit_rate=0.1)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_crash_list_coerced_to_tuple(self):
        sched = FaultSchedule(crashes=[MachineCrash(1, 0)])
        assert isinstance(sched.crashes, tuple)
        assert hash(sched) is not None

    def test_empty_property(self):
        assert EMPTY_SCHEDULE.empty
        assert FaultSchedule().empty
        assert not FaultSchedule(crashes=(MachineCrash(0, 0),)).empty
        assert not FaultSchedule(
            stragglers=(StragglerWindow(0, 2.0),)
        ).empty
        assert not FaultSchedule(retransmit_rate=0.01).empty
        assert not FaultSchedule(transient_failures=1).empty


class TestSlowdown:
    def test_no_window_returns_none(self):
        sched = FaultSchedule(
            stragglers=(StragglerWindow(0, 2.0, start_superstep=5),)
        )
        assert sched.slowdown(4, 0) is None
        assert sched.slowdown(4, 4) is None

    def test_window_coverage(self):
        sched = FaultSchedule(stragglers=(
            StragglerWindow(1, 3.0, start_superstep=2, end_superstep=4),
        ))
        slow = sched.slowdown(4, 2)
        assert slow is not None
        assert slow[1] == 3.0
        assert slow[0] == slow[2] == slow[3] == 1.0
        assert sched.slowdown(4, 4) is None

    def test_overlapping_windows_multiply(self):
        sched = FaultSchedule(stragglers=(
            StragglerWindow(0, 2.0),
            StragglerWindow(0, 1.5),
        ))
        slow = sched.slowdown(2, 0)
        assert slow[0] == pytest.approx(3.0)

    def test_out_of_range_machine_ignored(self):
        sched = FaultSchedule(stragglers=(StragglerWindow(7, 2.0),))
        assert sched.slowdown(4, 0) is None


class TestFromSeed:
    def test_deterministic(self):
        kwargs = dict(machines=4, max_superstep=10, crashes=2,
                      straggler_rate=0.5, retransmit_rate=0.05)
        assert (FaultSchedule.from_seed(9, **kwargs)
                == FaultSchedule.from_seed(9, **kwargs))

    def test_different_seeds_differ(self):
        schedules = {
            FaultSchedule.from_seed(s, machines=8, max_superstep=50,
                                    crashes=3)
            for s in range(10)
        }
        assert len(schedules) > 1

    def test_crash_supersteps_valid(self):
        sched = FaultSchedule.from_seed(3, machines=4, max_superstep=10,
                                        crashes=4)
        steps = [c.superstep for c in sched.crashes]
        assert steps == sorted(set(steps))
        assert all(0 <= s < 10 for s in steps)
        assert all(0 <= c.machine < 4 for c in sched.crashes)

    def test_too_many_crashes_rejected(self):
        with pytest.raises(ClusterConfigError):
            FaultSchedule.from_seed(0, machines=2, max_superstep=2, crashes=3)
