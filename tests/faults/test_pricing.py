"""Pricing-layer tests: checkpoint, recovery, straggler, and
retransmission cost terms, plus the new ClusterSpec fields."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.cluster.spec import scale_out
from repro.datagen.fft import generate_fft
from repro.errors import ClusterConfigError, PlatformError
from repro.faults import FaultSchedule, MachineCrash, StragglerWindow
from repro.platforms.registry import get_platform


@pytest.fixture(scope="module")
def graph():
    """Small deterministic power-law graph shared by all cases."""
    return generate_fft(200, alpha=40.0, seed=3).graph


@pytest.fixture(scope="module")
def cluster():
    """Four machines, so a crash leaves survivors."""
    return scale_out(4)


@pytest.fixture(scope="module")
def platform():
    """Engine-managed family; PR reaches a predictable superstep count."""
    return get_platform("Pregel+")


class TestCostTerms:
    def test_breakdown_includes_fault_terms(self, graph, cluster, platform):
        sched = FaultSchedule(crashes=(MachineCrash(2, machine=1),))
        run = platform.run("pr", graph, cluster, fault_schedule=sched,
                           checkpoint_interval=2)
        b = run.priced.breakdown()
        assert b["checkpoint_s"] > 0
        assert b["recovery_s"] > 0
        assert b["total_s"] == pytest.approx(
            platform.profile.cost.startup_seconds
            + b["compute_s"] + b["network_s"] + b["barrier_s"]
            + b["checkpoint_s"] + b["recovery_s"]
        )

    def test_shorter_interval_costs_more_checkpoint(self, graph, cluster,
                                                    platform):
        sched = FaultSchedule(crashes=(MachineCrash(10**6, machine=0),))
        tight = platform.run("pr", graph, cluster, fault_schedule=sched,
                             checkpoint_interval=1)
        loose = platform.run("pr", graph, cluster, fault_schedule=sched,
                             checkpoint_interval=8)
        assert (tight.priced.checkpoint_seconds
                > loose.priced.checkpoint_seconds)

    def test_metrics_report_fault_columns(self, graph, cluster, platform):
        sched = FaultSchedule(crashes=(MachineCrash(2, machine=1),))
        run = platform.run("pr", graph, cluster, fault_schedule=sched,
                           checkpoint_interval=2)
        row = run.metrics.as_row()
        assert row["checkpoint_s"] == run.priced.checkpoint_seconds
        assert row["recovery_s"] == run.priced.recovery_seconds
        assert row["failure_free_run_s"] < row["run_s"]

    def test_reprice_keeps_fault_terms(self, graph, cluster, platform):
        sched = FaultSchedule(crashes=(MachineCrash(2, machine=1),))
        run = platform.run("pr", graph, cluster, fault_schedule=sched,
                           checkpoint_interval=2)
        repriced = run.reprice(scale_out(4, threads=16), platform.profile)
        assert repriced.recovery_seconds > 0
        assert repriced.seconds != run.priced.seconds


class TestStragglers:
    def test_straggler_increases_seconds(self, graph, cluster, platform):
        base = platform.run("pr", graph, cluster)
        slow = platform.run("pr", graph, cluster, fault_schedule=FaultSchedule(
            stragglers=(StragglerWindow(machine=0, factor=4.0),)
        ))
        assert slow.priced.seconds > base.priced.seconds
        assert np.array_equal(np.asarray(slow.values),
                              np.asarray(base.values))

    def test_windowed_straggler_cheaper_than_permanent(self, graph, cluster,
                                                       platform):
        permanent = platform.run("pr", graph, cluster,
                                 fault_schedule=FaultSchedule(
            stragglers=(StragglerWindow(machine=0, factor=4.0),)
        ))
        windowed = platform.run("pr", graph, cluster,
                                fault_schedule=FaultSchedule(
            stragglers=(StragglerWindow(machine=0, factor=4.0,
                                        start_superstep=0,
                                        end_superstep=2),)
        ))
        assert windowed.priced.seconds < permanent.priced.seconds


class TestRetransmission:
    def test_deterministic_and_costly(self, graph, cluster, platform):
        base = platform.run("pr", graph, cluster)
        sched = FaultSchedule(retransmit_rate=0.2, seed=11)
        first = platform.run("pr", graph, cluster, fault_schedule=sched)
        second = platform.run("pr", graph, cluster, fault_schedule=sched)
        assert first.priced.seconds == second.priced.seconds
        assert first.priced.seconds > base.priced.seconds
        assert np.array_equal(np.asarray(first.values),
                              np.asarray(base.values))

    def test_seed_changes_price(self, graph, cluster, platform):
        a = platform.run("pr", graph, cluster,
                         fault_schedule=FaultSchedule(retransmit_rate=0.2,
                                                      seed=1))
        b = platform.run("pr", graph, cluster,
                         fault_schedule=FaultSchedule(retransmit_rate=0.2,
                                                      seed=2))
        assert a.priced.seconds != b.priced.seconds


class TestCrashLimits:
    def test_killing_last_machine_raises(self, graph, platform):
        sched = FaultSchedule(crashes=(MachineCrash(1, machine=0),))
        with pytest.raises(PlatformError):
            platform.run("pr", graph, scale_out(1), fault_schedule=sched)

    def test_crash_on_missing_machine_is_inert(self, graph, cluster,
                                               platform):
        base = platform.run("pr", graph, cluster)
        sched = FaultSchedule(crashes=(MachineCrash(2, machine=9),))
        run = platform.run("pr", graph, cluster, fault_schedule=sched,
                           checkpoint_interval=2)
        assert not run.timeline.crashes
        assert np.array_equal(np.asarray(run.values),
                              np.asarray(base.values))
        assert run.priced.recovery_seconds == 0.0


class TestSpecFields:
    def test_disk_bandwidth_must_be_positive(self):
        with pytest.raises(ClusterConfigError):
            ClusterSpec(disk_bandwidth_bytes_per_second=0.0)

    def test_failover_must_be_non_negative(self):
        with pytest.raises(ClusterConfigError):
            ClusterSpec(failover_seconds=-1.0)

    def test_slower_disk_costs_more_checkpoint(self, graph, platform):
        sched = FaultSchedule(crashes=(MachineCrash(10**6, machine=0),))
        fast = platform.run("pr", graph, scale_out(4),
                            fault_schedule=sched, checkpoint_interval=2)
        slow_spec = ClusterSpec(
            machines=4,
            disk_bandwidth_bytes_per_second=ClusterSpec()
            .disk_bandwidth_bytes_per_second / 10,
        )
        slow = platform.run("pr", graph, slow_spec,
                            fault_schedule=sched, checkpoint_interval=2)
        assert (slow.priced.checkpoint_seconds
                == pytest.approx(10 * fast.priced.checkpoint_seconds))
