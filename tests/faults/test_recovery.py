"""Acceptance tests for crash recovery across all four engine families.

The design invariant: a crashed-and-recovered run must produce output
bit-identical to the failure-free run, and the timeline's reconstructed
failure-free trace must equal the failure-free run's trace
record-for-record.  Determinism makes both disciplines (engine-managed
re-execution and recorder-managed replay-by-copy) exact.
"""

import numpy as np
import pytest

from repro.cluster.spec import scale_out
from repro.datagen.fft import generate_fft
from repro.faults import EMPTY_SCHEDULE, FaultSchedule, MachineCrash
from repro.platforms.registry import get_platform

#: One representative platform per computing model, with an algorithm
#: that model supports and a superstep every run reaches.
ENGINE_FAMILIES = [
    ("Pregel+", "pr", 2),
    ("PowerGraph", "pr", 2),
    ("Grape", "pr", 2),
    ("G-thinker", "tc", 0),
]


@pytest.fixture(scope="module")
def graph():
    """Small deterministic power-law graph shared by all cases."""
    return generate_fft(200, alpha=40.0, seed=3).graph


@pytest.fixture(scope="module")
def cluster():
    """Four machines, so a crash leaves survivors."""
    return scale_out(4)


def traces_equal(a, b) -> bool:
    """Record-for-record bit equality of two work traces."""
    if len(a.steps) != len(b.steps):
        return False
    return all(
        np.array_equal(x.ops, y.ops)
        and np.array_equal(x.msg_count, y.msg_count)
        and np.array_equal(x.msg_bytes, y.msg_bytes)
        for x, y in zip(a.steps, b.steps)
    )


@pytest.mark.parametrize("platform_name,algorithm,crash_step", ENGINE_FAMILIES)
class TestCrashRecovery:
    def test_output_bit_identical(self, platform_name, algorithm, crash_step,
                                  graph, cluster):
        platform = get_platform(platform_name)
        baseline = platform.run(algorithm, graph, cluster)
        sched = FaultSchedule(crashes=(MachineCrash(crash_step, machine=1),))
        faulted = platform.run(algorithm, graph, cluster,
                               fault_schedule=sched, checkpoint_interval=2)
        assert np.array_equal(np.asarray(baseline.values),
                              np.asarray(faulted.values))
        assert len(faulted.timeline.crashes) == 1
        assert faulted.trace.supersteps > baseline.trace.supersteps

    def test_failure_free_trace_matches_baseline(self, platform_name,
                                                 algorithm, crash_step,
                                                 graph, cluster):
        platform = get_platform(platform_name)
        baseline = platform.run(algorithm, graph, cluster)
        sched = FaultSchedule(crashes=(MachineCrash(crash_step, machine=1),))
        faulted = platform.run(algorithm, graph, cluster,
                               fault_schedule=sched, checkpoint_interval=2)
        ff = faulted.timeline.failure_free_trace(faulted.trace)
        assert traces_equal(ff, baseline.trace)

    def test_same_schedule_same_priced_seconds(self, platform_name,
                                               algorithm, crash_step,
                                               graph, cluster):
        platform = get_platform(platform_name)
        sched = FaultSchedule(crashes=(MachineCrash(crash_step, machine=1),))
        first = platform.run(algorithm, graph, cluster,
                             fault_schedule=sched, checkpoint_interval=2)
        second = platform.run(algorithm, graph, cluster,
                              fault_schedule=sched, checkpoint_interval=2)
        assert first.priced.seconds == second.priced.seconds
        assert first.priced.recovery_seconds > 0

    def test_faulted_slower_than_failure_free(self, platform_name, algorithm,
                                              crash_step, graph, cluster):
        platform = get_platform(platform_name)
        baseline = platform.run(algorithm, graph, cluster)
        sched = FaultSchedule(crashes=(MachineCrash(crash_step, machine=1),))
        faulted = platform.run(algorithm, graph, cluster,
                               fault_schedule=sched, checkpoint_interval=2)
        assert faulted.priced.seconds > baseline.priced.seconds
        assert (faulted.metrics.failure_free_run_seconds
                == pytest.approx(baseline.priced.seconds))


@pytest.mark.parametrize("platform_name,algorithm,crash_step", ENGINE_FAMILIES)
def test_empty_schedule_is_bit_identical(platform_name, algorithm, crash_step,
                                         graph, cluster):
    """An empty schedule attaches no runtime: trace and price exactly
    match a run with no schedule at all (the parity invariant)."""
    platform = get_platform(platform_name)
    plain = platform.run(algorithm, graph, cluster)
    empty = platform.run(algorithm, graph, cluster,
                         fault_schedule=EMPTY_SCHEDULE)
    assert empty.timeline is None
    assert empty.priced == plain.priced
    assert traces_equal(empty.trace, plain.trace)
    assert empty.metrics.checkpoint_seconds == 0.0
    assert empty.metrics.failure_free_run_seconds is None


def test_two_crashes_recovered(graph, cluster):
    """Successive crashes (strictly increasing supersteps) both recover."""
    platform = get_platform("Pregel+")
    baseline = platform.run("pr", graph, cluster)
    sched = FaultSchedule(crashes=(
        MachineCrash(superstep=2, machine=1),
        MachineCrash(superstep=4, machine=3),
    ))
    faulted = platform.run("pr", graph, cluster, fault_schedule=sched,
                           checkpoint_interval=2)
    assert len(faulted.timeline.crashes) == 2
    assert np.array_equal(np.asarray(baseline.values),
                          np.asarray(faulted.values))
    ff = faulted.timeline.failure_free_trace(faulted.trace)
    assert traces_equal(ff, baseline.trace)


def test_two_engine_sections_recover(graph, cluster):
    """BC runs two engine loops (forward + backward); a crash in the
    second section still recovers bit-identically."""
    platform = get_platform("Pregel+")
    baseline = platform.run("bc", graph, cluster)
    forward_steps = baseline.trace.supersteps
    # Crash well into the run so it lands past the first section on this
    # graph (the global counter spans both sections).
    crash_at = forward_steps - 2
    sched = FaultSchedule(crashes=(MachineCrash(crash_at, machine=2),))
    faulted = platform.run("bc", graph, cluster, fault_schedule=sched,
                           checkpoint_interval=3)
    assert len(faulted.timeline.crashes) == 1
    assert np.array_equal(np.asarray(baseline.values),
                          np.asarray(faulted.values))
    assert traces_equal(faulted.timeline.failure_free_trace(faulted.trace),
                        baseline.trace)


def test_inert_crash_still_checkpoints(graph, cluster):
    """A crash scheduled past the end of the run never fires, but the
    non-empty schedule still pays for checkpoint protection."""
    platform = get_platform("Pregel+")
    sched = FaultSchedule(crashes=(MachineCrash(10**6, machine=0),))
    run = platform.run("pr", graph, cluster, fault_schedule=sched,
                       checkpoint_interval=2)
    assert run.timeline is not None
    assert not run.timeline.crashes
    assert len(run.timeline.checkpoints) > 0
    assert run.priced.checkpoint_seconds > 0
    assert run.priced.recovery_seconds == 0.0


def test_direct_metering_routines_recover(graph, cluster):
    """PowerGraph TC meters outside the GAS loop (recorder-managed);
    recovery there is replay-by-copy and stays bit-identical."""
    platform = get_platform("PowerGraph")
    baseline = platform.run("tc", graph, cluster)
    sched = FaultSchedule(crashes=(MachineCrash(0, machine=1),))
    faulted = platform.run("tc", graph, cluster, fault_schedule=sched,
                           checkpoint_interval=2)
    assert faulted.values == baseline.values
    assert len(faulted.timeline.crashes) == 1
    assert traces_equal(faulted.timeline.failure_free_trace(faulted.trace),
                        baseline.trace)
