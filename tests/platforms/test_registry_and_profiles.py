"""Tests for the platform registry, profiles, and coverage matrix."""

import pytest

from repro.errors import PlatformError, UnsupportedAlgorithmError
from repro.platforms import (
    CORE_ALGORITHMS,
    PROFILES,
    all_platforms,
    coverage_matrix,
    get_platform,
    get_profile,
    platform_names,
)


def test_seven_platforms():
    assert len(platform_names()) == 7
    assert platform_names()[0] == "GraphX"


def test_table6_models():
    assert get_profile("GraphX").model == "vertex-centric"
    assert get_profile("PowerGraph").model == "edge-centric"
    assert get_profile("Grape").model == "block-centric"
    assert get_profile("G-thinker").model == "subgraph-centric"
    assert get_profile("Ligra").single_machine_only


def test_abbreviation_lookup():
    assert get_profile("PP").name == "Pregel+"
    assert get_profile("GT").name == "G-thinker"


def test_unknown_platform_rejected():
    with pytest.raises(PlatformError):
        get_profile("Spark")


def test_coverage_matrix_is_49_of_56():
    """The paper's Section 8.2: 49 of the 56 cases are implementable."""
    matrix = coverage_matrix()
    supported = sum(v for row in matrix.values() for v in row.values())
    assert supported == 49


def test_pregel_plus_lacks_cd():
    assert not get_platform("Pregel+").supports("cd")
    with pytest.raises(UnsupportedAlgorithmError):
        from repro.core import path_graph
        from repro.cluster import single_machine
        get_platform("Pregel+").run("cd", path_graph(5), single_machine())


def test_gthinker_only_subgraph_algorithms():
    gt = get_platform("G-thinker")
    assert set(gt.algorithms()) == {"tc", "kc"}
    for algorithm in ("pr", "lpa", "sssp", "wcc", "bc", "cd"):
        assert not gt.supports(algorithm)


def test_ligra_rejects_multiple_machines():
    from repro.cluster import scale_out
    from repro.core import path_graph
    with pytest.raises(PlatformError):
        get_platform("Ligra").run("pr", path_graph(10), scale_out(2))


def test_graphx_minimum_threads():
    from repro.cluster import single_machine
    from repro.core import path_graph
    gx = get_platform("GraphX")
    with pytest.raises(PlatformError):
        gx.run("pr", path_graph(10), single_machine(2))
    # SSSP needs only 2 threads
    gx.run("sssp", path_graph(10), single_machine(2))


def test_feature_flags_match_paper():
    assert get_profile("Flash").push_pull
    assert get_profile("Flash").vertex_subset
    assert get_profile("Flash").global_messaging
    assert get_profile("Ligra").push_pull
    assert get_profile("Pregel+").combiner
    assert get_profile("Pregel+").global_messaging
    assert not get_profile("GraphX").vertex_subset
    assert not get_profile("PowerGraph").global_messaging


def test_platform_instances_cached():
    assert get_platform("Grape") is get_platform("Grape")


def test_memory_model_positive():
    for profile in PROFILES.values():
        assert profile.memory_bytes(1000, 5000) > 0


def test_profiles_cover_core_algorithm_set():
    for platform in all_platforms():
        for algorithm in platform.algorithms():
            assert algorithm in CORE_ALGORITHMS
