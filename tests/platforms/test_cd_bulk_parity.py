"""Scalar-vs-bulk parity of the vertex-centric core-decomposition port.

:class:`CoreDecompositionProgram` drives its k-escalation from a master
hook (``before_superstep``), which historically forced the scalar path.
The ``bulk_master_hook`` opt-in lets the bulk-frontier engine run the
hook at the wave barrier and union the vertices it re-activates into the
frontier, so peel decisions, aggregator traffic, and neighbour
decrements meter identically on both paths.
"""

import numpy as np
import pytest

from repro.algorithms.reference import core_decomposition
from repro.core import Graph, random_graph, star_graph
from repro.cluster import single_machine
from repro.platforms import all_platforms, get_platform

RANDOM = random_graph(250, 1000, seed=21)
DANGLING = Graph.from_edges(
    [0, 0, 1, 2, 3, 4, 4], [1, 2, 3, 4, 5, 6, 0],
    num_vertices=8, directed=True,
)
STAR = star_graph(9)
EMPTY = Graph.from_edges([], [], num_vertices=6, directed=False)

CD_PLATFORMS = [
    p.name for p in all_platforms()
    if p.profile.model == "vertex-centric" and "cd" in p.algorithms()
]


def _assert_traces_identical(a, b):
    assert a.supersteps == b.supersteps
    for step_a, step_b in zip(a.steps, b.steps):
        assert np.array_equal(step_a.ops, step_b.ops)
        assert np.array_equal(step_a.msg_count, step_b.msg_count)
        assert np.array_equal(step_a.msg_bytes, step_b.msg_bytes)


@pytest.mark.parametrize("platform_name", CD_PLATFORMS)
@pytest.mark.parametrize(
    "graph",
    [RANDOM, DANGLING, STAR, EMPTY],
    ids=["random", "dangling", "star", "empty"],
)
def test_cd_parity(platform_name, graph):
    platform = get_platform(platform_name)
    cluster = single_machine()
    scalar = platform.run("cd", graph, cluster, engine_mode="scalar")
    bulk = platform.run("cd", graph, cluster, engine_mode="bulk")
    assert np.array_equal(np.asarray(scalar.values), np.asarray(bulk.values))
    _assert_traces_identical(scalar.trace, bulk.trace)


@pytest.mark.parametrize("platform_name", CD_PLATFORMS)
def test_cd_bulk_matches_reference(platform_name):
    result = get_platform(platform_name).run(
        "cd", RANDOM, single_machine(), engine_mode="bulk"
    )
    assert np.array_equal(np.asarray(result.values),
                          core_decomposition(RANDOM))


def test_some_platform_supports_cd_bulk():
    assert CD_PLATFORMS
