"""Scalar-vs-bulk GAS path parity and the array-native edge placement.

The bulk GAS path promises *bit-identical* WorkTraces and results to
the scalar path — identical per-iteration ops, message counts, message
bytes, and iteration counts, and ``np.array_equal`` on the algorithm
outputs — for the four ported programs (PR, LPA, SSSP, WCC).  The
placement tests pin down the greedy vertex-cut's invariants on small
hand-checked graphs.
"""

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.cluster import NUM_PARTS, TraceRecorder, single_machine
from repro.core import Graph, path_graph, random_graph, star_graph
from repro.datagen import uniform_weights
from repro.errors import PlatformError
from repro.platforms import get_platform, get_profile
from repro.platforms.edge_centric.engine import (
    EdgeCentricEngine,
    EdgePlacement,
)
from repro.platforms.edge_centric.programs import (
    BFSGAS,
    PageRankGAS,
)


def _isolated_graph() -> Graph:
    """Edges among the first 40 of 60 vertices: exercises isolated-
    vertex masters and empty gather segments."""
    rng = np.random.default_rng(7)
    src = rng.integers(0, 40, size=120)
    dst = rng.integers(0, 40, size=120)
    keep = src != dst
    return Graph.from_edges(src[keep], dst[keep], num_vertices=60,
                            directed=False)


RANDOM = random_graph(250, 1000, seed=21)
ISOLATED = _isolated_graph()
WEIGHTED = uniform_weights(random_graph(150, 600, seed=8), seed=5)


def _assert_traces_identical(a, b):
    assert a.supersteps == b.supersteps
    for step_a, step_b in zip(a.steps, b.steps):
        assert np.array_equal(step_a.ops, step_b.ops)
        assert np.array_equal(step_a.msg_count, step_b.msg_count)
        assert np.array_equal(step_a.msg_bytes, step_b.msg_bytes)


def _run_both(algorithm, graph, **params):
    platform = get_platform("PowerGraph")
    cluster = single_machine()
    scalar = platform.run(
        algorithm, graph, cluster, engine_mode="scalar", **params
    )
    bulk = platform.run(
        algorithm, graph, cluster, engine_mode="bulk", **params
    )
    return scalar, bulk


class TestGASPathParity:
    """Whole-platform PowerGraph runs diffed between the two paths."""

    @pytest.mark.parametrize(
        "graph", [RANDOM, ISOLATED], ids=["random", "isolated"]
    )
    def test_pr(self, graph):
        scalar, bulk = _run_both("pr", graph)
        assert np.array_equal(scalar.values, bulk.values)
        _assert_traces_identical(scalar.trace, bulk.trace)

    @pytest.mark.parametrize(
        "graph", [RANDOM, ISOLATED], ids=["random", "isolated"]
    )
    def test_lpa(self, graph):
        scalar, bulk = _run_both("lpa", graph)
        assert np.array_equal(scalar.values, bulk.values)
        _assert_traces_identical(scalar.trace, bulk.trace)

    @pytest.mark.parametrize(
        "graph", [RANDOM, WEIGHTED, path_graph(40)],
        ids=["unweighted", "weighted", "path"],
    )
    def test_sssp(self, graph):
        scalar, bulk = _run_both("sssp", graph)
        assert np.array_equal(scalar.values, bulk.values)
        _assert_traces_identical(scalar.trace, bulk.trace)

    @pytest.mark.parametrize(
        "graph", [RANDOM, ISOLATED, path_graph(40)],
        ids=["random", "isolated", "path"],
    )
    def test_wcc(self, graph):
        scalar, bulk = _run_both("wcc", graph)
        assert np.array_equal(scalar.values, bulk.values)
        _assert_traces_identical(scalar.trace, bulk.trace)

    def test_lpa_messages_are_24_bytes_on_both_paths(self):
        scalar, bulk = _run_both("lpa", RANDOM)
        for outcome in (scalar, bulk):
            assert outcome.trace.total_message_bytes == pytest.approx(
                24.0 * outcome.trace.total_messages
            )


class TestGASPathSelection:
    def _engine(self, graph, mode="auto", profile=None):
        profile = profile or get_profile("PowerGraph")
        placement = EdgePlacement(graph, NUM_PARTS)
        recorder = TraceRecorder(NUM_PARTS)
        return EdgeCentricEngine(
            graph, placement, recorder, profile, mode=mode
        )

    def test_auto_picks_bulk_for_capable_program(self):
        engine = self._engine(RANDOM)
        engine.run(PageRankGAS(iterations=2))
        assert engine.last_path == "bulk"

    def test_auto_falls_back_for_scalar_only_program(self):
        engine = self._engine(RANDOM)
        engine.run(BFSGAS(source=0), max_iterations=300)
        assert engine.last_path == "scalar"

    def test_profile_flag_pins_scalar(self):
        profile = dataclasses.replace(
            get_profile("PowerGraph"), bulk_frontier=False
        )
        engine = self._engine(RANDOM, profile=profile)
        engine.run(PageRankGAS(iterations=2))
        assert engine.last_path == "scalar"

    def test_forced_bulk_rejects_scalar_only_program(self):
        engine = self._engine(RANDOM, mode="bulk")
        with pytest.raises(PlatformError):
            engine.run(BFSGAS(source=0))

    def test_invalid_mode_rejected(self):
        with pytest.raises(PlatformError):
            self._engine(RANDOM, mode="turbo")

    def test_bulk_iterations_emit_gas_iteration_spans(self):
        platform = get_platform("PowerGraph")
        with obs.tracing() as tracer:
            platform.run(
                "pr", RANDOM, single_machine(), engine_mode="bulk"
            )
        steps = [s for s in tracer.spans if s.category == "superstep"]
        assert steps and {s.name for s in steps} == {"gas-iteration"}
        (engine_span,) = [
            s for s in tracer.spans if s.category == "engine"
        ]
        assert engine_span.attrs.get("path") == "bulk"


class TestEdgePlacementCut:
    def test_seed_determinism(self):
        g = random_graph(120, 500, seed=3)
        a = EdgePlacement(g, NUM_PARTS, seed=23)
        b = EdgePlacement(g, NUM_PARTS, seed=23)
        assert np.array_equal(a.edge_part, b.edge_part)
        assert np.array_equal(a.master, b.master)
        assert np.array_equal(a.adj_part, b.adj_part)
        assert np.array_equal(a.replica_flat, b.replica_flat)

    def test_path_graph_hand_checked(self):
        # Path 0-1-2: the greedy cut reuses the part both chained edges
        # share through vertex 1, so everything lands on one part and
        # every vertex has exactly one replica.
        placement = EdgePlacement(path_graph(3), 4)
        assert np.unique(placement.edge_part).size == 1
        part = int(placement.edge_part[0])
        assert placement.replication_factor() == 1.0
        assert (placement.master == part).all()
        for v in range(3):
            assert placement.replica_parts[v].tolist() == [part]

    def test_star_graph_hand_checked(self):
        # All edges share the centre, whose replica set the greedy cut
        # keeps reusing while under the load cap — one part total.
        placement = EdgePlacement(star_graph(6), 2)
        assert np.unique(placement.edge_part).size == 1
        assert placement.replication_factor() == 1.0

    def test_master_is_lowest_replica_part(self):
        g = random_graph(200, 900, seed=4)
        placement = EdgePlacement(g, NUM_PARTS)
        for v in range(g.num_vertices):
            parts = placement.replica_parts[v]
            if parts.size:
                assert placement.master[v] == parts[0] == parts.min()
            else:
                assert placement.master[v] == v % NUM_PARTS

    def test_replication_factor_bounds(self):
        g = random_graph(300, 1500, seed=5)
        placement = EdgePlacement(g, NUM_PARTS)
        # between 1 (every vertex placed) and the published 2-4 range,
        # with head-room for the load cap's forced spills
        assert 1.0 <= placement.replication_factor() <= 5.0

    def test_per_part_load_balance_bound(self):
        g = random_graph(400, 3000, seed=6)
        parts = 8
        placement = EdgePlacement(g, parts, seed=23)
        m = placement.edge_part.shape[0]
        load = np.bincount(placement.edge_part, minlength=parts)
        # the greedy capacity 1.15 * m / parts + 2 is a hard cap
        assert load.max() <= 1.15 * m / parts + 3

    def test_adjacency_matches_graph(self):
        g = random_graph(100, 400, seed=6)
        placement = EdgePlacement(g, NUM_PARTS)
        for v in range(g.num_vertices):
            assert np.array_equal(
                np.sort(placement.neighbors[v]), g.neighbors(v)
            )
            assert placement.neighbors[v].size == placement.neighbor_parts[v].size

    def test_weighted_slots_align_with_neighbors(self):
        g = WEIGHTED
        placement = EdgePlacement(g, NUM_PARTS)
        for v in range(g.num_vertices):
            lo, hi = placement.indptr[v], placement.indptr[v + 1]
            for u, w in zip(placement.adj[lo:hi].tolist(),
                            placement.adj_weight[lo:hi].tolist()):
                assert w == g.edge_weight(v, u)

    def test_empty_graph(self):
        g = Graph.from_edges([], [], num_vertices=5, directed=False)
        placement = EdgePlacement(g, 4)
        assert placement.replication_factor() == 0.0
        assert np.array_equal(placement.master, np.arange(5) % 4)
