"""Dataset-sensitivity of scaling (Section 8.3): most platforms scale
threads better on Dense and worse on Diam than on Std."""

import pytest

from repro.cluster import price_trace, single_machine
from repro.datagen import build_dataset
from repro.platforms import get_platform


def _scaleup(platform_name: str, algorithm: str, dataset: str) -> float:
    platform = get_platform(platform_name)
    graph = build_dataset(dataset).graph
    run = platform.run(algorithm, graph, single_machine(32))
    lo = max(platform.profile.min_threads.get(algorithm, 1), 1)
    cost = platform.profile.cost
    t_lo = price_trace(run.trace, single_machine(lo), cost).seconds
    t_hi = price_trace(run.trace, single_machine(32), cost).seconds
    return t_lo / t_hi


def test_sssp_diam_sensitivity_is_mixed_but_bounded():
    """Table 10's SSSP column is mixed on Diam (Grape and PowerGraph
    degrade, Pregel+ and Ligra do not); we assert the same: at least
    one platform degrades, and nobody's factor moves wildly."""
    degraded = 0
    for name in ("Grape", "Pregel+", "Ligra"):
        std = _scaleup(name, "sssp", "S8-Std")
        diam = _scaleup(name, "sssp", "S8-Diam")
        if diam < std * 0.95:
            degraded += 1
        assert 0.5 * std < diam < 1.5 * std
    assert degraded >= 1


def test_tc_scaleup_insensitive_to_diameter():
    """TC has no per-level synchronization, so diameter barely matters."""
    std = _scaleup("Grape", "tc", "S8-Std")
    diam = _scaleup("Grape", "tc", "S8-Diam")
    assert diam == pytest.approx(std, rel=0.35)


def test_dense_scales_at_least_as_well_for_pr():
    """Dense datasets have more work per superstep -> more parallel
    slack for the iterative algorithms."""
    for name in ("Pregel+", "Ligra"):
        std = _scaleup(name, "pr", "S8-Std")
        dense = _scaleup(name, "pr", "S8-Dense")
        assert dense > std * 0.85
