"""Tests for the memory model: OOM boundaries and the paper's
exclusion patterns."""

import pytest

from repro.cluster import ClusterSpec, single_machine
from repro.datagen import build_dataset
from repro.errors import OutOfMemoryError
from repro.platforms import get_platform


def test_subgraph_working_set_exceeds_graph_bytes():
    g = build_dataset("S8-Std").graph
    gx = get_platform("GraphX")
    assert gx._working_set_extra_bytes("tc", g) > 0
    assert gx._working_set_extra_bytes("kc", g) > \
        gx._working_set_extra_bytes("tc", g)
    assert gx._working_set_extra_bytes("pr", g) == 0.0


def test_streaming_models_need_no_extra():
    g = build_dataset("S8-Std").graph
    assert get_platform("Grape")._working_set_extra_bytes("tc", g) == 0.0
    assert get_platform("G-thinker")._working_set_extra_bytes("tc", g) == 0.0


def test_vertex_subset_platforms_stream_buffers():
    g = build_dataset("S8-Std").graph
    flash = get_platform("Flash")._working_set_extra_bytes("tc", g)
    pregel = get_platform("Pregel+")._working_set_extra_bytes("tc", g)
    assert flash < pregel


def test_s9_tc_oom_pattern():
    """Table 11's missing TC rows: GraphX, PowerGraph, and Pregel+ cannot
    start the S9 TC sweep on one machine; Flash, Grape, G-thinker can."""
    g = build_dataset("S9-Std").graph
    one = single_machine(32)
    for name in ("GraphX", "PowerGraph", "Pregel+"):
        with pytest.raises(OutOfMemoryError):
            get_platform(name).check_capacity("tc", g, one)
    for name in ("Flash", "Grape", "G-thinker"):
        get_platform(name).check_capacity("tc", g, one)


def test_oom_message_is_informative():
    g = build_dataset("S9-Std").graph
    with pytest.raises(OutOfMemoryError, match="GraphX/tc"):
        get_platform("GraphX").check_capacity("tc", g, single_machine(32))


def test_more_machines_lift_oom():
    g = build_dataset("S9-Std").graph
    gx = get_platform("GraphX")
    cluster16 = ClusterSpec(machines=16, threads_per_machine=32)
    gx.check_capacity("pr", g, cluster16)  # plenty of aggregate memory


def test_stress_boundaries():
    """The stress experiment's headline: GraphX and Ligra cap at S9.5."""
    s10 = build_dataset("S10-Std").graph
    tight = ClusterSpec(machines=16, threads_per_machine=32,
                        memory_per_machine_bytes=16 * 1024 * 1024)
    with pytest.raises(OutOfMemoryError):
        get_platform("GraphX").check_capacity("pr", s10, tight)
    get_platform("Grape").check_capacity("pr", s10, tight)
    ligra_box = ClusterSpec(machines=1, threads_per_machine=32,
                            memory_per_machine_bytes=16 * 1024 * 1024)
    with pytest.raises(OutOfMemoryError):
        get_platform("Ligra").check_capacity("pr", s10, ligra_box)
