"""Scalar-vs-bulk execution path parity.

The bulk-frontier path promises *bit-identical* results and WorkTraces
to the scalar path — not approximately equal: identical per-superstep
ops, message counts, message bytes, and superstep counts, and
``np.array_equal`` on the algorithm outputs.  These tests diff the two
paths for PR, LPA, SSSP, and WCC across platform personalities and
datasets (including dangling/isolated vertices and weighted edges).
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import NUM_PARTS, TraceRecorder, single_machine
from repro.core import Graph, random_graph
from repro.core.partition import hash_partition
from repro.datagen import uniform_weights
from repro.errors import PlatformError
from repro.platforms import get_platform, get_profile
from repro.platforms.vertex_centric.engine import (
    BulkVertexProgram,
    VertexCentricEngine,
    VertexProgram,
)
from repro.platforms.vertex_centric.programs import (
    PageRankProgram,
    SSSPProgram,
    TriangleCountProgram,
    WCCHashMinProgram,
)


def _dangling_graph() -> Graph:
    """Directed graph with dangling sinks (5, 6) and an isolated vertex
    (7): exercises PR's aggregator path and empty-adjacency handling."""
    src = [0, 0, 1, 2, 3, 4, 4]
    dst = [1, 2, 3, 4, 5, 6, 0]
    return Graph.from_edges(src, dst, num_vertices=8, directed=True)


RANDOM = random_graph(250, 1000, seed=21)
DANGLING = _dangling_graph()
WEIGHTED = uniform_weights(random_graph(150, 600, seed=8), seed=5)

VERTEX_PLATFORMS = ("GraphX", "Flash", "Pregel+", "Ligra")


def _assert_traces_identical(a, b):
    assert a.supersteps == b.supersteps
    for step_a, step_b in zip(a.steps, b.steps):
        assert np.array_equal(step_a.ops, step_b.ops)
        assert np.array_equal(step_a.msg_count, step_b.msg_count)
        assert np.array_equal(step_a.msg_bytes, step_b.msg_bytes)


def _run_both(platform_name, algorithm, graph, **params):
    platform = get_platform(platform_name)
    cluster = single_machine()
    scalar = platform.run(
        algorithm, graph, cluster, engine_mode="scalar", **params
    )
    bulk = platform.run(
        algorithm, graph, cluster, engine_mode="bulk", **params
    )
    return scalar, bulk


class TestPlatformLevelParity:
    """Whole-platform runs diffed between forced scalar and forced bulk."""

    @pytest.mark.parametrize("platform_name", VERTEX_PLATFORMS)
    @pytest.mark.parametrize(
        "graph", [RANDOM, DANGLING], ids=["random", "dangling"]
    )
    def test_pr(self, platform_name, graph):
        scalar, bulk = _run_both(platform_name, "pr", graph)
        assert np.array_equal(scalar.values, bulk.values)
        _assert_traces_identical(scalar.trace, bulk.trace)

    @pytest.mark.parametrize("platform_name", VERTEX_PLATFORMS)
    @pytest.mark.parametrize(
        "graph", [RANDOM, DANGLING], ids=["random", "dangling"]
    )
    def test_lpa(self, platform_name, graph):
        scalar, bulk = _run_both(platform_name, "lpa", graph)
        assert np.array_equal(scalar.values, bulk.values)
        _assert_traces_identical(scalar.trace, bulk.trace)

    @pytest.mark.parametrize("platform_name", VERTEX_PLATFORMS)
    @pytest.mark.parametrize(
        "graph", [RANDOM, WEIGHTED], ids=["unweighted", "weighted"]
    )
    def test_sssp(self, platform_name, graph):
        scalar, bulk = _run_both(platform_name, "sssp", graph)
        assert np.array_equal(scalar.values, bulk.values)
        _assert_traces_identical(scalar.trace, bulk.trace)

    @pytest.mark.parametrize("platform_name", ["GraphX", "Ligra"])
    @pytest.mark.parametrize(
        "graph", [RANDOM, DANGLING], ids=["random", "dangling"]
    )
    def test_wcc(self, platform_name, graph):
        # Flash/Pregel+ select pointer-jumping WCC (scalar-only); the
        # HashMin bulk port is engine-tested under those profiles below.
        scalar, bulk = _run_both(platform_name, "wcc", graph)
        assert np.array_equal(scalar.values, bulk.values)
        _assert_traces_identical(scalar.trace, bulk.trace)


def _engine(graph, profile, mode):
    recorder = TraceRecorder(NUM_PARTS)
    partition = hash_partition(graph, NUM_PARTS)
    engine = VertexCentricEngine(
        graph, partition, recorder, profile, mode=mode
    )
    return engine, recorder


class TestCombinerParity:
    """Min-combining (Pregel+ mirroring) on the bulk path, which the
    platform-level WCC matrix can't reach (Pregel+ runs pointer-jump)."""

    @pytest.mark.parametrize("graph", [RANDOM, DANGLING],
                             ids=["random", "dangling"])
    def test_wcc_hashmin_under_combiner(self, graph):
        profile = get_profile("Pregel+")
        results = {}
        for mode in ("scalar", "bulk"):
            engine, recorder = _engine(graph, profile, mode)
            program = engine.run(
                WCCHashMinProgram(),
                max_supersteps=graph.num_vertices + 2,
            )
            results[mode] = (program.labels, recorder.trace)
        assert np.array_equal(results["scalar"][0], results["bulk"][0])
        _assert_traces_identical(results["scalar"][1], results["bulk"][1])


class TestPathSelection:
    def test_auto_picks_bulk_for_capable_program(self):
        engine, _ = _engine(RANDOM, get_profile("Flash"), "auto")
        engine.run(PageRankProgram(iterations=2))
        assert engine.last_path == "bulk"

    def test_auto_falls_back_for_scalar_only_program(self):
        engine, _ = _engine(RANDOM, get_profile("Flash"), "auto")
        engine.run(TriangleCountProgram())
        assert engine.last_path == "scalar"

    def test_profile_flag_pins_scalar(self):
        profile = dataclasses.replace(
            get_profile("Flash"), bulk_frontier=False
        )
        engine, _ = _engine(RANDOM, profile, "auto")
        engine.run(PageRankProgram(iterations=2))
        assert engine.last_path == "scalar"

    def test_forced_bulk_rejects_scalar_only_program(self):
        engine, _ = _engine(RANDOM, get_profile("Flash"), "bulk")
        with pytest.raises(PlatformError):
            engine.run(TriangleCountProgram())

    def test_invalid_mode_rejected(self):
        recorder = TraceRecorder(NUM_PARTS)
        partition = hash_partition(RANDOM, NUM_PARTS)
        with pytest.raises(PlatformError):
            VertexCentricEngine(
                RANDOM, partition, recorder, get_profile("Flash"),
                mode="turbo",
            )

    def test_bulk_combining_requires_declared_reducer(self):
        class _BadCombiner(BulkVertexProgram):
            combine = staticmethod(lambda a, b: a + b)
            bulk_combine = None  # scalar combine with no bulk twin

            def compute(self, v, messages, ctx):
                pass

            def compute_bulk(self, frontier, inbox, ctx):
                pass

        engine, _ = _engine(RANDOM, get_profile("Pregel+"), "bulk")
        with pytest.raises(PlatformError):
            engine.run(_BadCombiner())


class TestMessageBytesHonored:
    """Regression: sends used to hard-code 8.0-byte payloads, ignoring
    the program's ``message_bytes`` and coercing explicit 0.0 payloads
    back to 8.0 via ``nbytes or 8.0``."""

    def test_program_message_bytes_used_as_default(self):
        class _Wide(VertexProgram):
            message_bytes = 24.0

            def setup(self, graph):
                pass

            def compute(self, v, messages, ctx):
                if ctx.superstep == 0:
                    ctx.send_to_neighbors(v, 1.0)

        graph = random_graph(40, 150, seed=2)
        engine, recorder = _engine(graph, get_profile("Flash"), "scalar")
        engine.run(_Wide())
        trace = recorder.trace
        assert trace.total_message_bytes == pytest.approx(
            24.0 * trace.total_messages
        )

    def test_explicit_zero_nbytes_honored(self):
        class _Signal(VertexProgram):
            def setup(self, graph):
                pass

            def compute(self, v, messages, ctx):
                if ctx.superstep == 0 and v == 0:
                    ctx.send(0, 1, 1.0, nbytes=0.0)

        graph = random_graph(40, 150, seed=2)
        engine, recorder = _engine(graph, get_profile("Flash"), "scalar")
        engine.run(_Signal())
        trace = recorder.trace
        assert trace.total_messages == 1
        assert trace.total_message_bytes == 0.0

    def test_bulk_sends_use_program_message_bytes(self):
        class _WideBulk(BulkVertexProgram):
            message_bytes = 16.0

            def setup(self, graph):
                pass

            def compute(self, v, messages, ctx):
                if ctx.superstep == 0:
                    ctx.send_to_neighbors(v, 1.0)

            def compute_bulk(self, frontier, inbox, ctx):
                if ctx.superstep == 0:
                    ctx.send_to_neighbors_bulk(
                        frontier, np.ones(frontier.shape[0])
                    )

        graph = random_graph(40, 150, seed=2)
        engine, recorder = _engine(graph, get_profile("Flash"), "bulk")
        engine.run(_WideBulk())
        trace = recorder.trace
        assert trace.total_messages == int(graph.out_degrees().sum())
        assert trace.total_message_bytes == pytest.approx(
            16.0 * trace.total_messages
        )
