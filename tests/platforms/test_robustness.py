"""Failure-injection and robustness tests: errors surface cleanly and
leave no corrupted shared state behind."""

import numpy as np
import pytest

from repro.cluster import NUM_PARTS, TraceRecorder, single_machine
from repro.core import path_graph, random_graph
from repro.core.partition import hash_partition
from repro.errors import ClusterConfigError
from repro.platforms import get_platform, get_profile
from repro.platforms.vertex_centric.engine import (
    VertexCentricEngine,
    VertexProgram,
)


class _ExplodingProgram(VertexProgram):
    """Raises mid-superstep after poisoning some messages."""

    def compute(self, v, messages, ctx):
        if ctx.superstep == 0:
            ctx.send_to_neighbors(v, 1)
        if v == 3:
            raise RuntimeError("injected failure")


def test_engine_failure_propagates():
    g = path_graph(10)
    recorder = TraceRecorder(NUM_PARTS)
    engine = VertexCentricEngine(
        g, hash_partition(g, NUM_PARTS), recorder, get_profile("Flash")
    )
    with pytest.raises(RuntimeError, match="injected failure"):
        engine.run(_ExplodingProgram())


def test_platform_usable_after_algorithm_failure():
    """A failed run must not poison the cached platform instance."""
    g = random_graph(60, 200, seed=1)
    platform = get_platform("Flash")
    with pytest.raises(Exception):
        platform.run("kc", g, single_machine(), k=1)  # invalid k
    # Subsequent runs on the same (cached) platform work normally.
    result = platform.run("pr", g, single_machine())
    assert np.isclose(result.values.sum(), 1.0)


def test_recorder_rejects_interleaved_runs():
    """A recorder left mid-superstep refuses further misuse loudly."""
    recorder = TraceRecorder(4)
    recorder.begin_superstep()
    with pytest.raises(ClusterConfigError):
        recorder.begin_superstep()


def test_run_results_are_independent():
    """Two runs of the same case return independent traces/value arrays."""
    g = random_graph(50, 150, seed=2)
    platform = get_platform("Ligra")
    a = platform.run("pr", g, single_machine())
    b = platform.run("pr", g, single_machine())
    assert a.trace is not b.trace
    a.values[0] = 123.0
    assert b.values[0] != 123.0


def test_empty_graph_runs_everywhere():
    from repro.core import Graph
    g = Graph.from_edges([], [], num_vertices=5)
    for name in ("Flash", "Grape", "PowerGraph"):
        platform = get_platform(name)
        result = platform.run("wcc", g, single_machine())
        assert np.array_equal(result.values, np.arange(5))


def test_single_vertex_graph():
    from repro.core import Graph
    g = Graph.from_edges([], [], num_vertices=1)
    result = get_platform("Pregel+").run("pr", g, single_machine())
    assert np.isclose(result.values.sum(), 1.0)


def test_disconnected_graph_sssp():
    from repro.core import Graph
    g = Graph.from_edges([0, 2], [1, 3], num_vertices=5)
    for name in ("Flash", "Grape", "PowerGraph"):
        result = get_platform(name).run("sssp", g, single_machine())
        assert result.values[1] == 1.0
        assert np.isinf(result.values[2])
        assert np.isinf(result.values[4])
