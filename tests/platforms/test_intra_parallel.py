"""Partition-parallel superstep parity and sharding gates.

``intra_jobs > 1`` fans each bulk superstep over a pool of shard worker
processes that open the same CSR zero-copy.  The contract is the same
as every other execution-path split in this repo: *bit-identical*
results and WorkTraces to the single-process bulk run — identical
per-superstep ops, message counts, message bytes, and superstep counts,
and ``np.array_equal`` on the outputs — at any shard count.

These tests run whole platforms twice (``intra_jobs=1`` vs ``2``/``3``)
and diff the outcomes, then pin down the gates that silently fall back
to in-process execution (scalar mode, shard workers, slot budget).

The slot budget defaults to the CPU count, which on a single-core CI
runner would clamp every request to 1 shard — the module fixture raises
it so sharding actually activates, and restores it afterwards.
"""

import numpy as np
import pytest

from repro.cluster import single_machine
from repro.core import Graph, random_graph
from repro.datagen import uniform_weights
from repro.platforms import get_platform
from repro.platforms.parallel import (
    effective_intra_jobs,
    get_slot_budget,
    set_slot_budget,
)
from repro.platforms.parallel import config as parallel_config


def _dangling_graph() -> Graph:
    src = [0, 0, 1, 2, 3, 4, 4]
    dst = [1, 2, 3, 4, 5, 6, 0]
    return Graph.from_edges(src, dst, num_vertices=8, directed=True)


RANDOM = random_graph(250, 1000, seed=21)
DANGLING = _dangling_graph()
WEIGHTED = uniform_weights(random_graph(150, 600, seed=8), seed=5)

GRAPHS = {"random": RANDOM, "dangling": DANGLING, "weighted": WEIGHTED}

#: Flash is omitted: it shares the plain vertex-centric engine with
#: GraphX and the Pregel+ entry already covers the combiner path.
VERTEX_PLATFORMS = ("GraphX", "Pregel+", "Ligra")


@pytest.fixture(scope="module", autouse=True)
def _slot_budget():
    """Raise the budget so shard requests are not clamped to the CPU
    count, and tear the shard pools down with the module."""
    previous = get_slot_budget()
    set_slot_budget(8)
    yield
    set_slot_budget(previous)
    from repro.platforms.parallel import shard

    shard.shutdown_shard_pools()


def _assert_traces_identical(a, b):
    assert a.supersteps == b.supersteps
    for step_a, step_b in zip(a.steps, b.steps):
        assert np.array_equal(step_a.ops, step_b.ops)
        assert np.array_equal(step_a.msg_count, step_b.msg_count)
        assert np.array_equal(step_a.msg_bytes, step_b.msg_bytes)


_BASELINES: dict = {}


def _run(platform_name, algorithm, graph_name, intra_jobs):
    return get_platform(platform_name).run(
        algorithm,
        GRAPHS[graph_name],
        single_machine(),
        engine_mode="bulk",
        intra_jobs=intra_jobs,
    )


def _assert_sharded_parity(platform_name, algorithm, graph_name, k):
    memo = (platform_name, algorithm, graph_name)
    if memo not in _BASELINES:
        _BASELINES[memo] = _run(platform_name, algorithm, graph_name, 1)
    single = _BASELINES[memo]
    sharded = _run(platform_name, algorithm, graph_name, k)
    assert np.array_equal(single.values, sharded.values)
    _assert_traces_identical(single.trace, sharded.trace)


class TestVertexShardedParity:
    """Vertex-centric bulk supersteps fanned over shard workers."""

    @pytest.mark.parametrize("k", (2, 3))
    @pytest.mark.parametrize("platform_name", VERTEX_PLATFORMS)
    @pytest.mark.parametrize("graph_name", ("random", "dangling"))
    def test_pr(self, platform_name, graph_name, k):
        _assert_sharded_parity(platform_name, "pr", graph_name, k)

    @pytest.mark.parametrize("k", (2, 3))
    @pytest.mark.parametrize("platform_name", VERTEX_PLATFORMS)
    def test_lpa(self, platform_name, k):
        _assert_sharded_parity(platform_name, "lpa", "random", k)

    @pytest.mark.parametrize("k", (2, 3))
    @pytest.mark.parametrize("platform_name", VERTEX_PLATFORMS)
    def test_sssp_weighted(self, platform_name, k):
        _assert_sharded_parity(platform_name, "sssp", "weighted", k)

    @pytest.mark.parametrize("k", (2, 3))
    @pytest.mark.parametrize("platform_name", ("GraphX", "Ligra"))
    def test_wcc(self, platform_name, k):
        # Flash/Pregel+ select pointer-jumping WCC, which has no bulk
        # path at all — sharding never applies there.
        _assert_sharded_parity(platform_name, "wcc", "random", k)

    def test_more_shards_than_budget_share(self):
        # intra_jobs above the slot budget is clamped, not an error; the
        # clamped run still matches the baseline bit for bit.
        _assert_sharded_parity("GraphX", "pr", "random", 64)


class TestEdgeShardedParity:
    """Edge-centric bulk GAS iterations fanned over shard workers."""

    @pytest.mark.parametrize("k", (2, 3))
    @pytest.mark.parametrize(
        "algorithm,graph_name",
        [("pr", "random"), ("lpa", "random"),
         ("sssp", "weighted"), ("wcc", "random")],
    )
    def test_parity(self, algorithm, graph_name, k):
        _assert_sharded_parity("PowerGraph", algorithm, graph_name, k)


class TestShardingGates:
    """Paths where ``intra_jobs`` must silently fall back to 1."""

    def test_scalar_mode_ignores_intra_jobs(self):
        platform = get_platform("GraphX")
        base = platform.run("pr", RANDOM, single_machine(),
                            engine_mode="scalar")
        with_jobs = platform.run("pr", RANDOM, single_machine(),
                                 engine_mode="scalar", intra_jobs=4)
        assert np.array_equal(base.values, with_jobs.values)
        _assert_traces_identical(base.trace, with_jobs.trace)

    def test_shard_worker_never_reshards(self, monkeypatch):
        monkeypatch.setattr(parallel_config, "_SHARD_WORKER", True)
        assert effective_intra_jobs(8) == 1

    def test_pool_worker_gets_budget_share(self, monkeypatch):
        # An 8-slot budget split over a 4-wide pool leaves each worker
        # 2 shard slots; a 16-wide pool leaves 1 (never 0).
        monkeypatch.setattr(parallel_config, "_SLOT_BUDGET", 8)
        monkeypatch.setattr(parallel_config, "_POOL_WIDTH", 4)
        assert effective_intra_jobs(8) == 2
        assert effective_intra_jobs(2) == 2
        assert effective_intra_jobs(1) == 1
        monkeypatch.setattr(parallel_config, "_POOL_WIDTH", 16)
        assert effective_intra_jobs(8) == 1

    def test_standalone_clamps_to_budget(self, monkeypatch):
        monkeypatch.setattr(parallel_config, "_SLOT_BUDGET", 3)
        monkeypatch.setattr(parallel_config, "_POOL_WIDTH", 0)
        assert effective_intra_jobs(8) == 3
        assert effective_intra_jobs(2) == 2

    def test_tiny_graph_runs_in_process(self):
        # n < 2 vertices per shard is not the gate — n < 2 overall is;
        # either way a 2-vertex graph must work and match.
        tiny = Graph.from_edges([0], [1], num_vertices=2, directed=False)
        platform = get_platform("GraphX")
        base = platform.run("pr", tiny, single_machine(),
                            engine_mode="bulk")
        sharded = platform.run("pr", tiny, single_machine(),
                               engine_mode="bulk", intra_jobs=4)
        assert np.array_equal(base.values, sharded.values)
        _assert_traces_identical(base.trace, sharded.trace)
