"""Edge-case tests for the block-, edge-, and subgraph-centric engines."""

import numpy as np
import pytest

from repro.cluster import NUM_PARTS, TraceRecorder, single_machine
from repro.core import Graph, path_graph, random_graph
from repro.platforms import get_platform, get_profile
from repro.platforms.block_centric.engine import BlockCentricEngine
from repro.platforms.edge_centric.engine import EdgeCentricEngine, EdgePlacement
from repro.platforms.edge_centric.programs import SSSPGAS
from repro.platforms.subgraph_centric.engine import SubgraphCentricEngine


class TestBlockEngine:
    def test_local_vs_remote_neighbors_partition_adjacency(self):
        g = path_graph(64)
        engine = BlockCentricEngine(g, TraceRecorder(NUM_PARTS))
        for v in (0, 10, 32, 63):
            local = set(engine.local_neighbors(v).tolist())
            remote = set(engine.remote_neighbors(v).tolist())
            assert local | remote == set(g.neighbors(v).tolist())
            assert not (local & remote)

    def test_cut_edges_on_block_boundaries_only(self):
        g = path_graph(64)
        engine = BlockCentricEngine(g, TraceRecorder(NUM_PARTS))
        cut = [
            (u, v) for u, v in g.edges() if engine.is_cut_edge(u, v)
        ]
        # a 64-vertex path over 16 blocks: exactly 15 boundary edges
        assert len(cut) == 15

    def test_cd_cascade_crosses_blocks(self):
        """A path's peeling cascade unravels across every block; the
        result must still match the reference."""
        from repro.algorithms.reference import core_decomposition
        g = path_graph(80)
        result = get_platform("Grape").run("cd", g, single_machine())
        assert np.array_equal(result.values, core_decomposition(g))
        # the cascade crosses 16 blocks: multiple IncEval rounds
        assert result.metrics.supersteps > 3

    def test_wcc_merges_chain_of_blocks(self):
        from repro.algorithms.reference import wcc
        g = path_graph(200)
        result = get_platform("Grape").run("wcc", g, single_machine())
        assert np.array_equal(result.values, wcc(g))


class TestGASEngine:
    def test_scatter_activates_neighbors_only_on_change(self):
        g = path_graph(30)
        placement = EdgePlacement(g, NUM_PARTS)
        recorder = TraceRecorder(NUM_PARTS)
        engine = EdgeCentricEngine(g, placement, recorder,
                                   get_profile("PowerGraph"))
        program = SSSPGAS(source=0)
        engine.run(program, max_iterations=100)
        # a 30-vertex path relaxes one hop per iteration
        assert recorder.trace.supersteps >= 29
        assert np.array_equal(program.dist, np.arange(30, dtype=float))

    def test_isolated_vertices_have_master(self):
        g = Graph.from_edges([0], [1], num_vertices=5)
        placement = EdgePlacement(g, 4)
        assert placement.master.shape[0] == 5
        assert 0 <= placement.master[4] < 4

    def test_replica_parts_subset_of_neighbor_parts(self):
        g = random_graph(80, 300, seed=1)
        placement = EdgePlacement(g, 8)
        for v in range(g.num_vertices):
            replicas = set(placement.replica_parts[v].tolist())
            parts = set(placement.neighbor_parts[v].tolist())
            assert replicas == parts


class TestSubgraphEngine:
    def test_adjacency_pulled_once_per_worker(self):
        g = random_graph(100, 400, seed=2)
        recorder = TraceRecorder(NUM_PARTS)
        engine = SubgraphCentricEngine(g, recorder)
        engine.begin_phase()
        worker = 0
        target = int(np.argmax(engine.owner != worker))
        before = recorder.trace  # messages recorded at end_superstep
        engine.pull_adjacency(worker, target)
        engine.pull_adjacency(worker, target)  # cached: no second message
        engine.end_phase()
        assert recorder.trace.total_messages == 1

    def test_local_pull_is_free(self):
        g = random_graph(50, 150, seed=3)
        recorder = TraceRecorder(NUM_PARTS)
        engine = SubgraphCentricEngine(g, recorder)
        engine.begin_phase()
        worker = int(engine.owner[0])
        engine.pull_adjacency(worker, 0)
        engine.end_phase()
        assert recorder.trace.total_messages == 0

    def test_kc_rejects_small_k(self):
        from repro.errors import GraphStructureError
        g = path_graph(5)
        engine = SubgraphCentricEngine(g, TraceRecorder(NUM_PARTS))
        with pytest.raises(GraphStructureError):
            engine.count_k_cliques(2)


class TestVertexEngineEdgeCases:
    def test_push_pull_discount_only_on_dense_frontiers(self):
        """Sparse frontiers (SSSP waves) pay full message cost even on
        push/pull platforms; dense ones (PR) get the discount."""
        g = path_graph(400)
        flash = get_platform("Flash")
        ligra = get_platform("Ligra")
        # dense-frontier PR: push/pull platforms cheaper per message
        pr_flash = flash.run("pr", g, single_machine())
        assert pr_flash.metrics.compute_ops > 0
        # sparse-frontier SSSP on a path: frontier of 1 vertex
        sssp = ligra.run("sssp", g, single_machine())
        assert sssp.metrics.supersteps >= 399

    def test_weighted_sssp_individual_sends(self):
        from repro.algorithms.reference import dijkstra
        from repro.datagen import exponential_weights
        g = exponential_weights(random_graph(60, 200, seed=5), seed=1)
        result = get_platform("Pregel+").run("sssp", g, single_machine())
        assert np.allclose(result.values, dijkstra(g, 0), equal_nan=True)
