"""Scalar-vs-bulk parity of the subgraph-centric (G-thinker) engine.

Each algorithm (TC, KC, LCC) runs as two twin paths — the scalar
per-task loop and the vectorized wave over the flat forward CSR — that
promise *bit-identical* WorkTraces: same per-phase ops, message counts,
and message bytes, and equal results.  These tests diff whole G-thinker
runs between the paths and pin the edge-case semantics the scalar path
defines: degree-0/1 vertices get LCC 0.0 (never NaN), and self-loops
close no triangle or clique.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import Graph, path_graph, random_graph, star_graph
from repro.cluster import single_machine
from repro.cluster.cost import NUM_PARTS, TraceRecorder
from repro.errors import GraphStructureError
from repro.platforms import get_platform
from repro.platforms.subgraph_centric.engine import SubgraphCentricEngine


def _clustered_graph() -> Graph:
    rng = np.random.default_rng(11)
    src, dst = [], []
    for c in range(5):
        base = c * 12
        for i in range(12):
            for j in range(i + 1, 12):
                if rng.random() < 0.7:
                    src.append(base + i)
                    dst.append(base + j)
        if c:
            src.append(base - 1)
            dst.append(base)
    return Graph.from_edges(src, dst, num_vertices=60, directed=False)


RANDOM = random_graph(200, 900, seed=13)
CLUSTERED = _clustered_graph()
TRIANGLE_FREE = path_graph(40)
STAR = star_graph(9)
EMPTY = Graph.from_edges([], [], num_vertices=8, directed=False)
GRAPHS = [RANDOM, CLUSTERED, TRIANGLE_FREE, STAR, EMPTY]
GRAPH_IDS = ["random", "clustered", "triangle-free", "star", "empty"]


def _loopy_graph() -> Graph:
    """A triangle with self-loops kept, plus isolated and degree-1
    vertices — the edge cases the scalar semantics define."""
    src = [0, 1, 0, 0, 2, 3]
    dst = [1, 2, 2, 0, 2, 4]
    return Graph.from_edges(
        src, dst, num_vertices=7, directed=False, drop_self_loops=False
    )


def _assert_traces_identical(a, b):
    assert a.supersteps == b.supersteps
    for step_a, step_b in zip(a.steps, b.steps):
        assert np.array_equal(step_a.ops, step_b.ops)
        assert np.array_equal(step_a.msg_count, step_b.msg_count)
        assert np.array_equal(step_a.msg_bytes, step_b.msg_bytes)


def _run_both(algorithm, graph, **params):
    platform = get_platform("G-thinker")
    cluster = single_machine()
    scalar = platform.run(
        algorithm, graph, cluster, engine_mode="scalar", **params
    )
    bulk = platform.run(algorithm, graph, cluster, engine_mode="bulk", **params)
    return scalar, bulk


class TestSubgraphParity:
    """Whole-platform G-thinker runs diffed between the two paths."""

    @pytest.mark.parametrize("graph", GRAPHS, ids=GRAPH_IDS)
    def test_tc(self, graph):
        scalar, bulk = _run_both("tc", graph)
        assert scalar.values == bulk.values
        _assert_traces_identical(scalar.trace, bulk.trace)

    @pytest.mark.parametrize("graph", GRAPHS, ids=GRAPH_IDS)
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_kc(self, graph, k):
        scalar, bulk = _run_both("kc", graph, k=k)
        assert scalar.values == bulk.values
        _assert_traces_identical(scalar.trace, bulk.trace)

    @pytest.mark.parametrize("graph", GRAPHS, ids=GRAPH_IDS)
    def test_lcc(self, graph):
        scalar, bulk = _run_both("lcc", graph)
        assert np.array_equal(
            np.asarray(scalar.values), np.asarray(bulk.values)
        )
        _assert_traces_identical(scalar.trace, bulk.trace)

    def test_loopy_graph_parity(self):
        for algorithm, params in [("tc", {}), ("kc", {"k": 3}), ("lcc", {})]:
            scalar, bulk = _run_both(algorithm, _loopy_graph(), **params)
            assert np.array_equal(
                np.asarray(scalar.values), np.asarray(bulk.values)
            )
            _assert_traces_identical(scalar.trace, bulk.trace)

    def test_auto_mode_takes_bulk(self):
        platform = get_platform("G-thinker")
        auto = platform.run("tc", RANDOM, single_machine())
        scalar, bulk = _run_both("tc", RANDOM)
        assert auto.values == scalar.values == bulk.values
        _assert_traces_identical(auto.trace, bulk.trace)

    def test_engine_span_carries_path(self):
        platform = get_platform("G-thinker")
        with obs.tracing() as tracer:
            platform.run("tc", RANDOM, single_machine(), engine_mode="bulk")
        (engine_span,) = [s for s in tracer.spans if s.category == "engine"]
        assert engine_span.attrs.get("path") == "bulk"
        with obs.tracing() as tracer:
            platform.run("tc", RANDOM, single_machine(), engine_mode="scalar")
        (engine_span,) = [s for s in tracer.spans if s.category == "engine"]
        assert engine_span.attrs.get("path") == "scalar"

    def test_cache_counters_match(self):
        """The bulk pull aggregation replicates the scalar cache's
        hit/miss observability counters exactly."""
        counts = {}
        for mode in ("scalar", "bulk"):
            with obs.tracing() as tracer:
                get_platform("G-thinker").run(
                    "kc", CLUSTERED, single_machine(), engine_mode=mode, k=4
                )
            totals = tracer.counters.snapshot()
            counts[mode] = (
                totals.get(obs.CACHE_MISSES, 0.0),
                totals.get(obs.CACHE_HITS, 0.0),
            )
        assert counts["scalar"] == counts["bulk"]

    def test_kc_rejects_small_k_on_both_paths(self):
        engine = SubgraphCentricEngine(STAR, TraceRecorder(NUM_PARTS))
        with pytest.raises(GraphStructureError):
            engine.count_k_cliques(2)
        with pytest.raises(GraphStructureError):
            engine.count_k_cliques_bulk(2)


class TestSubgraphEdgeCases:
    """Degree-0/1 and self-loop semantics (regression: these produced
    NaN coefficients and phantom triangles/cliques)."""

    def test_isolated_and_leaf_vertices_get_zero_lcc(self):
        graph = _loopy_graph()
        for mode in ("scalar", "bulk"):
            result = get_platform("G-thinker").run(
                "lcc", graph, single_machine(), engine_mode=mode
            )
            lcc = np.asarray(result.values)
            assert not np.isnan(lcc).any()
            assert lcc[4] == 0.0  # degree 1
            assert lcc[5] == 0.0  # isolated
            assert lcc[6] == 0.0  # isolated

    def test_self_loops_close_no_triangle(self):
        graph = _loopy_graph()
        for mode in ("scalar", "bulk"):
            result = get_platform("G-thinker").run(
                "tc", graph, single_machine(), engine_mode=mode
            )
            assert result.values == 1  # only (0, 1, 2)

    def test_self_loops_join_no_clique(self):
        graph = _loopy_graph()
        for mode in ("scalar", "bulk"):
            result = get_platform("G-thinker").run(
                "kc", graph, single_machine(), engine_mode=mode, k=3
            )
            assert result.values == 1

    def test_looped_vertex_lcc_uses_simple_degree(self):
        """Vertex 0 has simple degree 2 (loop slot excluded) and sits in
        one triangle, so its coefficient is exactly 1.0."""
        graph = _loopy_graph()
        result = get_platform("G-thinker").run(
            "lcc", graph, single_machine(), engine_mode="bulk"
        )
        assert np.asarray(result.values)[0] == 1.0


class TestPullCacheScope:
    """pull_adjacency dedupes within one phase and re-meters across
    phases — the invariant the bulk per-wave aggregation relies on
    (regression: the cache used to persist across phases, so a second
    wave's pulls were silently free on the scalar path only)."""

    def test_repeat_pull_within_phase_charges_once(self):
        recorder = TraceRecorder(NUM_PARTS)
        engine = SubgraphCentricEngine(STAR, recorder)
        u = int(np.flatnonzero(engine.owner != engine.owner[0])[0])
        worker = int(engine.owner[0])
        engine.begin_phase()
        engine.pull_adjacency(worker, u)
        engine.pull_adjacency(worker, u)
        engine.end_phase()
        trace = recorder.trace
        assert trace.steps[0].msg_count.sum() == 1

    def test_pull_in_two_phases_charges_twice(self):
        recorder = TraceRecorder(NUM_PARTS)
        engine = SubgraphCentricEngine(STAR, recorder)
        u = int(np.flatnonzero(engine.owner != engine.owner[0])[0])
        worker = int(engine.owner[0])
        for _ in range(2):
            engine.begin_phase()
            engine.pull_adjacency(worker, u)
            engine.end_phase()
        trace = recorder.trace
        assert trace.supersteps == 2
        assert trace.steps[0].msg_count.sum() == 1
        assert trace.steps[1].msg_count.sum() == 1
        assert np.array_equal(
            trace.steps[0].msg_bytes, trace.steps[1].msg_bytes
        )
