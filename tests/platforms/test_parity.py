"""Cross-platform parity: every supported platform × algorithm case must
produce exactly the reference kernel's output — the core guarantee that
the simulated platforms do real work."""

import numpy as np
import pytest

from repro.algorithms.reference import (
    betweenness_from_source,
    core_decomposition,
    dijkstra,
    k_clique_count,
    label_propagation,
    pagerank,
    triangle_count,
    wcc,
)
from repro.cluster import single_machine
from repro.core import random_graph
from repro.datagen import uniform_weights
from repro.platforms import all_platforms, get_platform

GRAPH = random_graph(250, 1000, seed=21)
WEIGHTED = uniform_weights(random_graph(150, 600, seed=8), seed=5)
CLUSTER = single_machine(32)

REFERENCE = {
    "pr": pagerank(GRAPH),
    "lpa": label_propagation(GRAPH),
    "sssp": dijkstra(GRAPH, 0),
    "wcc": wcc(GRAPH),
    "bc": betweenness_from_source(GRAPH, 0),
    "cd": core_decomposition(GRAPH),
    "tc": triangle_count(GRAPH),
    "kc": k_clique_count(GRAPH, 4),
}

CASES = [
    (platform.name, algorithm)
    for platform in all_platforms()
    for algorithm in platform.algorithms()
]


@pytest.mark.parametrize("platform_name,algorithm", CASES)
def test_platform_matches_reference(platform_name, algorithm):
    platform = get_platform(platform_name)
    result = platform.run(algorithm, GRAPH, CLUSTER)
    expected = REFERENCE[algorithm]
    if isinstance(expected, (int, np.integer)):
        assert result.values == expected
    elif algorithm in ("lpa", "wcc", "cd"):
        assert np.array_equal(result.values, expected)
    else:
        assert np.allclose(result.values, expected, equal_nan=True)


@pytest.mark.parametrize(
    "platform_name",
    [p.name for p in all_platforms() if p.supports("sssp")],
)
def test_weighted_sssp_parity(platform_name):
    platform = get_platform(platform_name)
    result = platform.run("sssp", WEIGHTED, CLUSTER)
    assert np.allclose(result.values, dijkstra(WEIGHTED, 0), equal_nan=True)


@pytest.mark.parametrize(
    "platform_name",
    [p.name for p in all_platforms() if p.supports("kc")],
)
def test_kc5_parity(platform_name):
    platform = get_platform(platform_name)
    small = random_graph(80, 400, seed=3)
    result = platform.run("kc", small, CLUSTER, k=5)
    assert result.values == k_clique_count(small, 5)


def test_every_run_produces_metrics():
    result = get_platform("Flash").run("pr", GRAPH, CLUSTER)
    assert result.metrics.run_seconds > 0
    assert result.metrics.supersteps >= 11
    assert result.metrics.compute_ops > 0
    assert result.metrics.throughput_edges_per_second > 0
