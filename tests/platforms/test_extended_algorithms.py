"""Parity tests for the LDBC comparison algorithms (BFS, LCC) across
every platform that implements them."""

import numpy as np
import pytest

from repro.algorithms.reference import bfs, local_clustering_coefficient
from repro.cluster import single_machine
from repro.core import random_graph
from repro.platforms import all_platforms, get_platform

GRAPH = random_graph(220, 900, seed=17)
CLUSTER = single_machine(32)


@pytest.mark.parametrize(
    "platform_name",
    [p.name for p in all_platforms() if "bfs" in p.extended_algorithms()],
)
def test_bfs_parity(platform_name):
    result = get_platform(platform_name).run("bfs", GRAPH, CLUSTER)
    assert np.array_equal(result.values, bfs(GRAPH, 0))


@pytest.mark.parametrize(
    "platform_name",
    [p.name for p in all_platforms() if "lcc" in p.extended_algorithms()],
)
def test_lcc_parity(platform_name):
    result = get_platform(platform_name).run("lcc", GRAPH, CLUSTER)
    assert np.allclose(result.values, local_clustering_coefficient(GRAPH))


def test_extended_algorithms_outside_coverage_matrix():
    """The 49/56 coverage matrix counts only the core suite."""
    from repro.platforms import coverage_matrix
    matrix = coverage_matrix()
    assert sum(v for row in matrix.values() for v in row.values()) == 49
    for row in matrix.values():
        assert "bfs" not in row
        assert "lcc" not in row


def test_gthinker_extended_set():
    gt = get_platform("G-thinker")
    assert gt.extended_algorithms() == ["lcc"]
    assert not gt.supports("bfs")


def test_bfs_alternate_source():
    result = get_platform("Flash").run("bfs", GRAPH, CLUSTER, source=7)
    assert np.array_equal(result.values, bfs(GRAPH, 7))


def test_bfs_supersteps_track_depth():
    from repro.core import path_graph
    long_path = path_graph(150)
    run = get_platform("Pregel+").run("bfs", long_path, CLUSTER)
    assert run.metrics.supersteps >= 149
