"""Cost-shape tests: the paper's headline performance orderings must
emerge from the priced traces."""

import pytest

from repro.cluster import price_trace, scale_out, single_machine
from repro.datagen import build_dataset
from repro.platforms import get_platform


@pytest.fixture(scope="module")
def s8():
    return {
        name: build_dataset(name).graph
        for name in ("S8-Std", "S8-Dense", "S8-Diam")
    }


@pytest.fixture(scope="module")
def cluster():
    return single_machine(32)


def _seconds(platform_name, algorithm, graph, cluster):
    return get_platform(platform_name).run(
        algorithm, graph, cluster
    ).priced.seconds


class TestAlgorithmImpact:
    def test_pr_insensitive_to_diameter(self, s8, cluster):
        for name in ("Flash", "Grape", "Ligra"):
            t_std = _seconds(name, "pr", s8["S8-Std"], cluster)
            t_diam = _seconds(name, "pr", s8["S8-Diam"], cluster)
            assert t_diam == pytest.approx(t_std, rel=0.5)

    def test_pr_faster_on_dense(self, s8, cluster):
        for name in ("Flash", "Pregel+", "Ligra"):
            assert _seconds(name, "pr", s8["S8-Dense"], cluster) < \
                _seconds(name, "pr", s8["S8-Std"], cluster)

    def test_sequential_slower_on_diam(self, s8, cluster):
        for name in ("Pregel+", "Ligra"):
            assert _seconds(name, "wcc", s8["S8-Diam"], cluster) > \
                _seconds(name, "wcc", s8["S8-Std"], cluster)

    def test_grape_diameter_insensitive_sssp(self, s8, cluster):
        t_std = _seconds("Grape", "sssp", s8["S8-Std"], cluster)
        t_diam = _seconds("Grape", "sssp", s8["S8-Diam"], cluster)
        assert t_diam < 2.0 * t_std

    def test_tc_slower_on_dense(self, s8, cluster):
        for name in ("Flash", "Grape", "G-thinker", "Ligra"):
            assert _seconds(name, "tc", s8["S8-Dense"], cluster) > \
                _seconds(name, "tc", s8["S8-Std"], cluster)

    def test_kc_slower_on_dense_and_diam(self, s8, cluster):
        for name in ("Grape", "G-thinker"):
            t_std = _seconds(name, "kc", s8["S8-Std"], cluster)
            assert _seconds(name, "kc", s8["S8-Dense"], cluster) > t_std
            assert _seconds(name, "kc", s8["S8-Diam"], cluster) > t_std

    def test_graphx_slowest_on_pr(self, s8, cluster):
        t_gx = _seconds("GraphX", "pr", s8["S8-Std"], cluster)
        for name in ("PowerGraph", "Flash", "Grape", "Pregel+", "Ligra"):
            assert t_gx > _seconds(name, "pr", s8["S8-Std"], cluster)

    def test_subset_platforms_win_cd(self, s8, cluster):
        """Flash/Ligra maintain active subsets; PowerGraph re-activates
        everything per coreness level (Section 8.2)."""
        t_pg = _seconds("PowerGraph", "cd", s8["S8-Std"], cluster)
        assert _seconds("Flash", "cd", s8["S8-Std"], cluster) < t_pg / 3
        assert _seconds("Ligra", "cd", s8["S8-Std"], cluster) < t_pg / 3


class TestScaling:
    def test_thread_scaling_order(self, s8):
        """Grape/Pregel+/Ligra scale threads best; GraphX worst."""
        graph = s8["S8-Std"]
        speedups = {}
        for name in ("GraphX", "PowerGraph", "Flash", "Grape",
                     "Pregel+", "Ligra"):
            platform = get_platform(name)
            result = platform.run("pr", graph, single_machine(32))
            lo = max(platform.profile.min_threads.get("pr", 1), 1)
            t_lo = price_trace(result.trace, single_machine(lo),
                               platform.profile.cost).seconds
            t_hi = price_trace(result.trace, single_machine(32),
                               platform.profile.cost).seconds
            speedups[name] = t_lo / t_hi
        assert speedups["Grape"] > 15
        assert speedups["Pregel+"] > 15
        assert speedups["Ligra"] > 15
        assert speedups["GraphX"] < speedups["PowerGraph"] \
            < speedups["Flash"] < speedups["Grape"]

    def test_scale_out_worse_than_scale_up(self):
        """Every platform's machine scaling lags its thread scaling."""
        graph = build_dataset("S9-Std").graph
        for name in ("PowerGraph", "Flash", "Grape", "Pregel+"):
            platform = get_platform(name)
            result = platform.run("pr", graph, single_machine(32))
            cost = platform.profile.cost
            up = (price_trace(result.trace, single_machine(1), cost).seconds
                  / price_trace(result.trace, single_machine(32),
                                cost).seconds)
            out = (price_trace(result.trace, scale_out(1), cost).seconds
                   / price_trace(result.trace, scale_out(16), cost).seconds)
            assert out < up

    def test_flash_scale_out_flat(self):
        """Table 11: Flash gains nothing from more machines on PR."""
        graph = build_dataset("S9-Std").graph
        platform = get_platform("Flash")
        result = platform.run("pr", graph, single_machine(32))
        cost = platform.profile.cost
        times = [price_trace(result.trace, scale_out(m), cost).seconds
                 for m in (1, 2, 4, 8, 16)]
        assert times[0] / min(times) < 1.5
