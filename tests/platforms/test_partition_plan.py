"""Partition-plan invariants and cross-process determinism.

The sharded superstep path leans on :func:`partition_plan` producing
slices that are disjoint, covering, CSR-boundary-aligned, and — because
the parent and every shard worker derive the plan independently —
identical across processes for the same ``(indptr, intra_jobs)``.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.core import random_graph
from repro.errors import ClusterConfigError
from repro.platforms.parallel import PartitionPlan, partition_plan

GRAPHS = {
    "random": random_graph(250, 1000, seed=21),
    "sparse": random_graph(64, 40, seed=3),
    "dense": random_graph(40, 700, seed=9),
}


def _plans():
    for name, graph in GRAPHS.items():
        for k in (1, 2, 3, 7, 16):
            yield name, graph, k


class TestPlanInvariants:
    @pytest.mark.parametrize(
        "name,graph,k", list(_plans()), ids=lambda p: str(p)
    )
    def test_disjoint_covering_monotone(self, name, graph, k):
        plan = partition_plan(graph.indptr, k)
        n = graph.num_vertices
        bounds = plan.bounds
        assert bounds[0] == 0
        assert bounds[-1] == n
        assert np.all(np.diff(bounds) >= 0)
        assert plan.num_shards == max(1, min(k, n))
        # Every vertex lands in exactly one shard.
        owner = np.zeros(n, dtype=np.int64)
        for i in range(plan.num_shards):
            lo, hi = plan.vertex_range(i)
            owner[lo:hi] += 1
        assert np.all(owner == 1)

    @pytest.mark.parametrize(
        "name,graph,k", list(_plans()), ids=lambda p: str(p)
    )
    def test_slot_bounds_respect_csr(self, name, graph, k):
        plan = partition_plan(graph.indptr, k)
        # Slot ranges are exactly the CSR ranges of the vertex slices:
        # no edge segment is ever split across shards.
        assert np.array_equal(
            plan.slot_bounds, graph.indptr[plan.bounds]
        )
        total = 0
        for i in range(plan.num_shards):
            lo, hi = plan.slot_range(i)
            assert lo == int(graph.indptr[plan.vertex_range(i)[0]])
            assert hi == int(graph.indptr[plan.vertex_range(i)[1]])
            total += hi - lo
        assert total == int(graph.indptr[-1])

    def test_split_points_slices_reconcat(self):
        graph = GRAPHS["random"]
        plan = partition_plan(graph.indptr, 4)
        frontier = np.unique(
            np.random.default_rng(7).integers(
                0, graph.num_vertices, size=90
            )
        )
        cuts = plan.split_points(frontier)
        slices = [
            frontier[cuts[i]:cuts[i + 1]] for i in range(plan.num_shards)
        ]
        assert np.array_equal(np.concatenate(slices), frontier)
        for i, chunk in enumerate(slices):
            lo, hi = plan.vertex_range(i)
            assert np.all((chunk >= lo) & (chunk < hi))

    def test_more_shards_than_vertices_clamps(self):
        graph = random_graph(5, 6, seed=1)
        plan = partition_plan(graph.indptr, 64)
        assert plan.num_shards == 5

    def test_validation(self):
        graph = GRAPHS["sparse"]
        with pytest.raises(ClusterConfigError):
            partition_plan(graph.indptr, 0)
        with pytest.raises(ClusterConfigError):
            partition_plan(graph.indptr, True)
        with pytest.raises(ClusterConfigError):
            partition_plan(np.empty((0,), dtype=np.int64), 2)
        with pytest.raises(ClusterConfigError):
            PartitionPlan(
                bounds=np.array([1, 4], dtype=np.int64),
                slot_bounds=np.array([0, 9], dtype=np.int64),
            )
        with pytest.raises(ClusterConfigError):
            PartitionPlan(
                bounds=np.array([0, 5, 3], dtype=np.int64),
                slot_bounds=np.array([0, 2, 9], dtype=np.int64),
            )


class TestCrossProcessDeterminism:
    def test_identical_plan_in_subprocess(self, tmp_path):
        """A fresh interpreter derives the same cut points from the same
        CSR — the property that lets parent and shard workers agree on
        ownership without any coordination messages."""
        graph = GRAPHS["random"]
        indptr_path = tmp_path / "indptr.npy"
        np.save(indptr_path, graph.indptr)
        script = (
            "import numpy as np\n"
            "from repro.platforms.parallel import partition_plan\n"
            f"indptr = np.load({str(indptr_path)!r})\n"
            "for k in (1, 2, 3, 7, 16):\n"
            "    plan = partition_plan(indptr, k)\n"
            "    print(plan.bounds.tolist(), plan.slot_bounds.tolist())\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        local_lines = []
        for k in (1, 2, 3, 7, 16):
            plan = partition_plan(graph.indptr, k)
            local_lines.append(
                f"{plan.bounds.tolist()} {plan.slot_bounds.tolist()}"
            )
        assert result.stdout.strip().splitlines() == local_lines
