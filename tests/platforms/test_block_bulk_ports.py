"""Scalar-vs-bulk parity of the block-centric BC and KC ports.

:func:`bc_blocks_bulk` vectorizes the Brandes phases' metering while
keeping the accumulation arithmetic literally identical to the scalar
pass (same ``np.add.at`` calls on the same DAG ordering), so both the
centrality values and the WorkTraces must match bit for bit.
:func:`kc_blocks_bulk` replaces the per-root DFS with the shared
level-synchronous expansion census.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import Graph, path_graph, random_graph, star_graph
from repro.cluster import single_machine
from repro.platforms import get_platform


def _clustered_graph() -> Graph:
    rng = np.random.default_rng(11)
    src, dst = [], []
    for c in range(5):
        base = c * 12
        for i in range(12):
            for j in range(i + 1, 12):
                if rng.random() < 0.7:
                    src.append(base + i)
                    dst.append(base + j)
        if c:
            src.append(base - 1)
            dst.append(base)
    return Graph.from_edges(src, dst, num_vertices=60, directed=False)


RANDOM = random_graph(200, 900, seed=13)
CLUSTERED = _clustered_graph()
PATH = path_graph(40)
STAR = star_graph(9)
EMPTY = Graph.from_edges([], [], num_vertices=8, directed=False)
GRAPHS = [RANDOM, CLUSTERED, PATH, STAR, EMPTY]
GRAPH_IDS = ["random", "clustered", "path", "star", "empty"]


def _assert_traces_identical(a, b):
    assert a.supersteps == b.supersteps
    for step_a, step_b in zip(a.steps, b.steps):
        assert np.array_equal(step_a.ops, step_b.ops)
        assert np.array_equal(step_a.msg_count, step_b.msg_count)
        assert np.array_equal(step_a.msg_bytes, step_b.msg_bytes)


def _run_both(algorithm, graph, **params):
    platform = get_platform("Grape")
    cluster = single_machine()
    scalar = platform.run(
        algorithm, graph, cluster, engine_mode="scalar", **params
    )
    bulk = platform.run(algorithm, graph, cluster, engine_mode="bulk", **params)
    return scalar, bulk


class TestBlockBCParity:
    @pytest.mark.parametrize("graph", GRAPHS, ids=GRAPH_IDS)
    def test_trace_and_values_identical(self, graph):
        scalar, bulk = _run_both("bc", graph)
        assert np.array_equal(
            np.asarray(scalar.values), np.asarray(bulk.values)
        )
        _assert_traces_identical(scalar.trace, bulk.trace)

    def test_nonzero_source(self):
        scalar, bulk = _run_both("bc", RANDOM, source=17)
        assert np.array_equal(
            np.asarray(scalar.values), np.asarray(bulk.values)
        )
        _assert_traces_identical(scalar.trace, bulk.trace)

    def test_auto_mode_takes_bulk(self):
        platform = get_platform("Grape")
        auto = platform.run("bc", RANDOM, single_machine())
        scalar, bulk = _run_both("bc", RANDOM)
        assert np.array_equal(np.asarray(auto.values),
                              np.asarray(scalar.values))
        _assert_traces_identical(auto.trace, bulk.trace)

    def test_engine_span_carries_path(self):
        platform = get_platform("Grape")
        for mode in ("bulk", "scalar"):
            with obs.tracing() as tracer:
                platform.run("bc", RANDOM, single_machine(), engine_mode=mode)
            (span,) = [s for s in tracer.spans if s.category == "engine"]
            assert span.attrs.get("path") == mode


class TestBlockKCParity:
    @pytest.mark.parametrize("graph", GRAPHS, ids=GRAPH_IDS)
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_trace_and_count_identical(self, graph, k):
        scalar, bulk = _run_both("kc", graph, k=k)
        assert scalar.values == bulk.values
        _assert_traces_identical(scalar.trace, bulk.trace)

    def test_auto_mode_takes_bulk(self):
        platform = get_platform("Grape")
        auto = platform.run("kc", CLUSTERED, single_machine())
        scalar, bulk = _run_both("kc", CLUSTERED)
        assert auto.values == scalar.values == bulk.values
        _assert_traces_identical(auto.trace, bulk.trace)

    def test_engine_span_carries_path(self):
        platform = get_platform("Grape")
        for mode in ("bulk", "scalar"):
            with obs.tracing() as tracer:
                platform.run("kc", CLUSTERED, single_machine(),
                             engine_mode=mode)
            (span,) = [s for s in tracer.spans if s.category == "engine"]
            assert span.attrs.get("path") == mode
