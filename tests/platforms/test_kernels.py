"""Unit tests for :mod:`repro.platforms.kernels` — the shared flat-CSR
primitives every bulk engine path is built from.

The dtype contracts matter as much as the values: ``expand_segments``
historically promoted to a platform-dependent dtype on empty inputs
(implicit int64 promotion of ``np.repeat`` on empty operands), which
made downstream index arithmetic differ between the empty and non-empty
branches.
"""

import numpy as np
import pytest

from repro.core import Graph, path_graph, random_graph, star_graph
from repro.platforms.kernels import (
    ChunkedDrawBuffer,
    closed_wedge_corners,
    expand_segments,
    forward_adjacency,
    forward_edge_arrays,
    lexsorted_csr,
    self_loop_counts,
    simple_degrees,
    unique_pull_pairs,
    vertex_order_positions,
)

RANDOM = random_graph(120, 500, seed=7)


class TestExpandSegments:
    INDPTR = np.array([0, 3, 3, 5, 9], dtype=np.int64)

    def test_basic_expansion(self):
        slots, owner_pos, counts = expand_segments(
            self.INDPTR, np.array([0, 2, 3])
        )
        assert np.array_equal(slots, [0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert np.array_equal(owner_pos, [0, 0, 0, 1, 1, 2, 2, 2, 2])
        assert np.array_equal(counts, [3, 2, 4])

    def test_repeated_ids_expand_repeatedly(self):
        slots, owner_pos, counts = expand_segments(
            self.INDPTR, np.array([2, 2])
        )
        assert np.array_equal(slots, [3, 4, 3, 4])
        assert np.array_equal(owner_pos, [0, 0, 1, 1])
        assert np.array_equal(counts, [2, 2])

    def test_empty_ids(self):
        slots, owner_pos, counts = expand_segments(self.INDPTR, np.array([]))
        for arr in (slots, owner_pos, counts):
            assert arr.size == 0
            assert arr.dtype == np.int64

    def test_all_empty_segments(self):
        slots, owner_pos, counts = expand_segments(
            self.INDPTR, np.array([1, 1])
        )
        assert slots.size == 0 and owner_pos.size == 0
        assert np.array_equal(counts, [0, 0])
        for arr in (slots, owner_pos, counts):
            assert arr.dtype == np.int64

    def test_single_segment(self):
        slots, owner_pos, counts = expand_segments(self.INDPTR, np.array([3]))
        assert np.array_equal(slots, [5, 6, 7, 8])
        assert np.array_equal(owner_pos, [0, 0, 0, 0])
        assert np.array_equal(counts, [4])

    def test_mixed_empty_segments(self):
        slots, owner_pos, counts = expand_segments(
            self.INDPTR, np.array([1, 0, 1, 2])
        )
        assert np.array_equal(slots, [0, 1, 2, 3, 4])
        assert np.array_equal(owner_pos, [1, 1, 1, 3, 3])
        assert np.array_equal(counts, [0, 3, 0, 2])

    @pytest.mark.parametrize("ids", [[], [1], [1, 1], [0, 1, 2]])
    def test_dtype_stable_across_branches(self, ids):
        """int64 outputs regardless of input dtypes or emptiness."""
        indptr32 = self.INDPTR.astype(np.int32)
        slots, owner_pos, counts = expand_segments(
            indptr32, np.array(ids, dtype=np.int32)
        )
        assert slots.dtype == np.int64
        assert owner_pos.dtype == np.int64
        assert counts.dtype == np.int64

    def test_returned_empties_are_fresh(self):
        """The empty branch must not alias a shared module constant."""
        a, _, _ = expand_segments(self.INDPTR, np.array([]))
        b, _, _ = expand_segments(self.INDPTR, np.array([]))
        assert a is not b


class TestLexsortedCSR:
    def test_sorts_and_packs(self):
        src = np.array([2, 0, 2, 0, 1])
        dst = np.array([1, 5, 0, 2, 3])
        indptr, s, d = lexsorted_csr(src, dst, 4)
        assert np.array_equal(indptr, [0, 2, 3, 5, 5])
        assert np.array_equal(s, [0, 0, 1, 2, 2])
        assert np.array_equal(d, [2, 5, 3, 0, 1])

    def test_aligned_arrays_follow_permutation(self):
        src = np.array([1, 0, 1])
        dst = np.array([2, 1, 0])
        eid = np.array([10, 20, 30])
        w = np.array([0.1, 0.2, 0.3])
        indptr, s, d, eid_s, w_s, none = lexsorted_csr(
            src, dst, 3, eid, w, None
        )
        assert np.array_equal(eid_s, [20, 30, 10])
        assert np.allclose(w_s, [0.2, 0.3, 0.1])
        assert none is None

    def test_empty(self):
        indptr, s, d = lexsorted_csr(np.array([]), np.array([]), 3)
        assert np.array_equal(indptr, [0, 0, 0, 0])
        assert s.size == 0 and d.size == 0


class TestForwardView:
    @pytest.mark.parametrize(
        "graph",
        [RANDOM, path_graph(20), star_graph(7)],
        ids=["random", "path", "star"],
    )
    def test_flat_view_matches_lists(self, graph):
        indptr, fsrc, fdst = forward_edge_arrays(graph)
        lists = forward_adjacency(graph)
        for v, fv in enumerate(lists):
            assert np.array_equal(fdst[indptr[v]:indptr[v + 1]], fv)

    def test_each_edge_oriented_once(self):
        _, fsrc, fdst = forward_edge_arrays(RANDOM)
        assert fsrc.size == RANDOM.num_edges
        position = vertex_order_positions(RANDOM)
        assert (position[fdst] > position[fsrc]).all()

    def test_self_loops_never_forward(self):
        g = Graph.from_edges(
            [0, 0, 1], [0, 1, 1], num_vertices=3,
            directed=False, drop_self_loops=False,
        )
        _, fsrc, fdst = forward_edge_arrays(g)
        assert (fsrc != fdst).all()
        assert fsrc.size == 1  # only the 0-1 edge

    def test_closed_wedges_count_triangles(self):
        from repro.algorithms.reference import triangle_count

        indptr, fsrc, fdst = forward_edge_arrays(RANDOM)
        v, u, w = closed_wedge_corners(indptr, fsrc, fdst, RANDOM.num_vertices)
        assert v.size == triangle_count(RANDOM)
        # every corner triple really is a triangle
        keys = set((fsrc * RANDOM.num_vertices + fdst).tolist())
        n = RANDOM.num_vertices
        for a, b, c in zip(v.tolist(), u.tolist(), w.tolist()):
            assert a * n + b in keys
            assert b * n + c in keys
            assert a * n + c in keys

    def test_closed_wedges_empty_graph(self):
        g = Graph.from_edges([], [], num_vertices=4, directed=False)
        indptr, fsrc, fdst = forward_edge_arrays(g)
        v, u, w = closed_wedge_corners(indptr, fsrc, fdst, 4)
        assert v.size == u.size == w.size == 0
        assert v.dtype == np.int64


class TestLoopAccounting:
    def test_self_loop_counts(self):
        g = Graph.from_edges(
            [0, 0, 1, 2], [0, 1, 1, 2], num_vertices=4,
            directed=False, drop_self_loops=False,
        )
        assert np.array_equal(self_loop_counts(g), [1, 1, 1, 0])

    def test_simple_degrees_exclude_loops(self):
        g = Graph.from_edges(
            [0, 0], [0, 1], num_vertices=3,
            directed=False, drop_self_loops=False,
        )
        degrees = simple_degrees(g)
        assert degrees.dtype == np.float64
        assert np.array_equal(degrees, [1.0, 1.0, 0.0])


class TestUniquePullPairs:
    def test_dedupes_and_counts_calls(self):
        owner = np.array([0, 0, 1, 1])
        roots = np.array([0, 0, 0, 1, 1])
        targets = np.array([2, 2, 3, 0, 2])
        pull_root, pull_vertex, calls = unique_pull_pairs(
            roots, targets, owner, 4
        )
        # (1, 2) is local (owner[2] == 1); the four others are remote,
        # with (0, 2) requested twice.
        assert calls == 4
        assert np.array_equal(pull_root, [0, 0, 1])
        assert np.array_equal(pull_vertex, [2, 3, 0])

    def test_all_local(self):
        owner = np.zeros(4, dtype=np.int64)
        pull_root, pull_vertex, calls = unique_pull_pairs(
            np.zeros(3, dtype=np.int64), np.array([1, 2, 3]), owner, 4
        )
        assert calls == 0
        assert pull_root.size == pull_vertex.size == 0


class TestChunkedDrawBuffer:
    def test_scalar_and_bulk_streams_identical(self):
        a = ChunkedDrawBuffer(np.random.default_rng(3), size=16)
        b = ChunkedDrawBuffer(np.random.default_rng(3), size=16)
        scalar = np.array([a.next() for _ in range(50)])
        bulk = np.concatenate([b.take(7), b.take(1), b.take(30), b.take(12)])
        assert np.array_equal(scalar, bulk)

    def test_draws_in_half_open_unit_interval(self):
        buf = ChunkedDrawBuffer(np.random.default_rng(5), size=8)
        draws = buf.take(100)
        assert (draws > 0.0).all() and (draws <= 1.0).all()
