"""Per-graph derived-kernel cache: memoization and GC-driven eviction."""

import gc

import pytest

from repro import obs
from repro.core import random_graph
from repro.platforms.kernels import (
    cached_kernel,
    clear_kernel_cache,
    forward_adjacency,
    kernel_cache_stats,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_kernel_cache()
    yield
    clear_kernel_cache()


class TestCachedKernel:
    def test_builder_runs_once_per_graph_and_key(self):
        graph = random_graph(30, 90, seed=4)
        calls = []
        first = cached_kernel(graph, "k", lambda: calls.append(1) or "a")
        second = cached_kernel(graph, "k", lambda: calls.append(1) or "b")
        assert first == "a" and second == "a"
        assert len(calls) == 1
        # A different key on the same graph builds again.
        assert cached_kernel(graph, "k2", lambda: "c") == "c"
        stats = kernel_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["graphs"] == 1

    def test_distinct_graphs_do_not_share_entries(self):
        a = random_graph(20, 40, seed=1)
        b = random_graph(20, 40, seed=1)
        assert cached_kernel(a, "k", lambda: "A") == "A"
        assert cached_kernel(b, "k", lambda: "B") == "B"
        assert kernel_cache_stats()["graphs"] == 2

    def test_entries_die_with_the_graph(self):
        graph = random_graph(20, 40, seed=2)
        cached_kernel(graph, "k", lambda: object())
        assert kernel_cache_stats()["graphs"] == 1
        del graph
        gc.collect()
        assert kernel_cache_stats()["graphs"] == 0

    def test_wrapped_kernels_memoize(self):
        graph = random_graph(40, 120, seed=7)
        assert forward_adjacency(graph) is forward_adjacency(graph)
        stats = kernel_cache_stats()
        assert stats["hits"] >= 1

    def test_counters_reach_the_tracer(self):
        graph = random_graph(20, 40, seed=9)
        with obs.tracing() as tracer:
            cached_kernel(graph, "k", lambda: 1)
            cached_kernel(graph, "k", lambda: 1)
        assert tracer.counters.get(obs.KERNEL_CACHE_MISSES) == 1.0
        assert tracer.counters.get(obs.KERNEL_CACHE_HITS) == 1.0
