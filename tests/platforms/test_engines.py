"""Engine-level behaviour tests: metering semantics, feature flags,
superstep counts, and error handling."""

import numpy as np
import pytest

from repro.cluster import NUM_PARTS, TraceRecorder, single_machine
from repro.core import Graph, path_graph, random_graph
from repro.core.partition import hash_partition
from repro.errors import ConvergenceError
from repro.platforms import get_platform, get_profile
from repro.platforms.edge_centric.engine import EdgePlacement
from repro.platforms.vertex_centric.engine import (
    VertexCentricEngine,
    VertexProgram,
)


class _EchoProgram(VertexProgram):
    """Sends one message along each edge at superstep 0, counts receipts."""

    def setup(self, graph):
        self.received = np.zeros(graph.num_vertices, dtype=np.int64)

    def compute(self, v, messages, ctx):
        if ctx.superstep == 0:
            ctx.send_to_neighbors(v, 1)
        else:
            self.received[v] += len(messages)


def _engine(graph, profile_name="Flash"):
    recorder = TraceRecorder(NUM_PARTS)
    profile = get_profile(profile_name)
    partition = hash_partition(graph, NUM_PARTS)
    return VertexCentricEngine(graph, partition, recorder, profile), recorder


class TestVertexEngine:
    def test_messages_delivered_once_per_edge(self):
        g = random_graph(50, 200, seed=1)
        engine, _ = _engine(g)
        program = engine.run(_EchoProgram())
        assert np.array_equal(program.received, g.out_degrees())

    def test_supersteps_metered(self):
        g = path_graph(10)
        engine, recorder = _engine(g)
        engine.run(_EchoProgram())
        assert recorder.trace.supersteps == 2

    def test_message_counts_metered(self):
        g = random_graph(40, 150, seed=2)
        engine, recorder = _engine(g)
        engine.run(_EchoProgram())
        # one message per adjacency slot
        assert recorder.trace.total_messages == int(g.out_degrees().sum())

    def test_full_scan_charged_without_vertex_subset(self):
        g = path_graph(64)
        _, rec_subset = _engine(g, "Flash")
        engine_subset, rec_subset = _engine(g, "Flash")
        engine_subset.run(_EchoProgram())
        engine_full, rec_full = _engine(g, "GraphX")
        engine_full.run(_EchoProgram())
        # GraphX scans all 64 vertices every superstep.
        assert rec_full.trace.total_ops > rec_subset.trace.total_ops

    def test_combiner_reduces_messages(self):
        g = random_graph(60, 400, seed=3)

        class _SumProgram(_EchoProgram):
            combine = staticmethod(lambda a, b: a + b)

        _, rec_plain = _engine(g, "Flash")
        engine_plain, rec_plain = _engine(g, "Flash")
        engine_plain.run(_SumProgram())
        engine_comb, rec_comb = _engine(g, "Pregel+")
        engine_comb.run(_SumProgram())
        assert rec_comb.trace.total_messages < rec_plain.trace.total_messages

    def test_combiner_preserves_results(self):
        g = random_graph(60, 400, seed=3)

        class _SumProgram(VertexProgram):
            combine = staticmethod(lambda a, b: a + b)

            def setup(self, graph):
                self.total = np.zeros(graph.num_vertices)

            def compute(self, v, messages, ctx):
                if ctx.superstep == 0:
                    ctx.send_to_neighbors(v, 1.0)
                else:
                    self.total[v] = sum(messages)

        engine_a, _ = _engine(g, "Flash")       # no combining
        a = engine_a.run(_SumProgram()).total
        engine_b, _ = _engine(g, "Pregel+")     # combining
        b = engine_b.run(_SumProgram()).total
        assert np.allclose(a, b)

    def test_superstep_budget_enforced(self):
        class _Forever(VertexProgram):
            def compute(self, v, messages, ctx):
                ctx.activate(v)

        g = path_graph(4)
        engine, _ = _engine(g)
        with pytest.raises(ConvergenceError):
            engine.run(_Forever(), max_supersteps=5)

    def test_aggregator_visible_next_superstep(self):
        class _Agg(VertexProgram):
            def setup(self, graph):
                self.seen = []

            def compute(self, v, messages, ctx):
                if ctx.superstep == 0:
                    ctx.aggregate("x", 1.0)
                    ctx.activate(v)
                elif ctx.superstep == 1 and v == 0:
                    self.seen.append(ctx.get_aggregate("x"))

        g = path_graph(6)
        engine, _ = _engine(g)
        program = engine.run(_Agg(), max_supersteps=3)
        assert program.seen == [6.0]


class TestEdgePlacement:
    def test_balanced_load(self):
        g = random_graph(300, 1500, seed=5)
        placement = EdgePlacement(g, 16)
        load = np.zeros(16)
        for parts in placement.neighbor_parts:
            np.add.at(load, parts, 1)
        assert load.max() <= 1.4 * load.mean()

    def test_replication_factor_reasonable(self):
        g = random_graph(300, 1500, seed=5)
        placement = EdgePlacement(g, 16)
        assert 1.0 <= placement.replication_factor() <= 8.0

    def test_neighbor_lists_complete(self):
        g = random_graph(100, 400, seed=6)
        placement = EdgePlacement(g, 16)
        for v in range(g.num_vertices):
            assert np.array_equal(
                np.sort(placement.neighbors[v]), g.neighbors(v)
            )


class TestSuperstepCounts:
    """Supersteps drive the paper's diameter-sensitivity stories."""

    def test_hashmin_tracks_diameter(self):
        short = random_graph(200, 1000, seed=1)
        long_path = path_graph(200)
        cluster = single_machine()
        gx = get_platform("GraphX")
        steps_short = gx.run("wcc", short, cluster).metrics.supersteps
        steps_long = gx.run("wcc", long_path, cluster).metrics.supersteps
        assert steps_long > 5 * steps_short

    def test_pointer_jumping_compresses_rounds(self):
        long_path = path_graph(400)
        cluster = single_machine()
        hashmin_steps = get_platform("GraphX").run(
            "wcc", long_path, cluster
        ).metrics.supersteps
        jump_steps = get_platform("Flash").run(
            "wcc", long_path, cluster
        ).metrics.supersteps
        assert jump_steps < hashmin_steps / 4

    def test_grape_rounds_insensitive_to_diameter(self):
        long_path = path_graph(400)
        cluster = single_machine()
        grape_steps = get_platform("Grape").run(
            "sssp", long_path, cluster
        ).metrics.supersteps
        # path crosses 16 blocks: rounds ~ blocks, not ~ 400 hops
        assert grape_steps <= 20

    def test_vertex_centric_sssp_tracks_depth(self):
        long_path = path_graph(120)
        cluster = single_machine()
        steps = get_platform("Pregel+").run(
            "sssp", long_path, cluster
        ).metrics.supersteps
        assert steps >= 119

    def test_tc_constant_supersteps(self):
        g = random_graph(100, 500, seed=2)
        steps = get_platform("Flash").run(
            "tc", g, single_machine()
        ).metrics.supersteps
        assert steps == 2
