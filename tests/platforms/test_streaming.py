"""Tests for the engine-level PEval/IncEval streaming mode."""

import numpy as np
import pytest

from repro.algorithms.reference import wcc
from repro.algorithms.reference.lpa import label_propagation
from repro.algorithms.reference.sssp import dijkstra
from repro.bench.dynamic_exp import lpa_is_stable
from repro.core.partition import hash_partition
from repro.datagen.dynamic import EdgeBatch, generate_stream
from repro.errors import PlatformError
from repro.faults.schedule import FaultSchedule, MachineCrash
from repro.platforms.registry import get_profile
from repro.platforms.vertex_centric.engine import VertexCentricEngine
from repro.platforms.vertex_centric.programs import PageRankProgram
from repro.platforms.vertex_centric.streaming import (
    STREAM_ALGORITHMS,
    DeltaPageRankProgram,
    StreamingSession,
    WindowResult,
)

N = 400


@pytest.fixture(scope="module")
def stream():
    return generate_stream(N, edges_per_batch=40, bulk_load=0.9, seed=5)


def _empty_batch(time):
    return EdgeBatch(time=time,
                     src=np.empty(0, dtype=np.int64),
                     dst=np.empty(0, dtype=np.int64))


class TestWindowParity:
    """Warm IncEval must track a cold run of the same algorithm."""

    def test_wcc_exact_per_window(self, stream):
        session = StreamingSession(N, "wcc")
        for t in range(min(4, len(stream))):
            session.process_window(stream.batches[t])
            assert np.array_equal(
                session.values(), wcc(stream.snapshot(t))
            ), f"window {t}"

    def test_sssp_exact_per_window(self, stream):
        session = StreamingSession(N, "sssp", source=0)
        for t in range(min(4, len(stream))):
            session.process_window(stream.batches[t])
            expected = dijkstra(stream.snapshot(t), 0)
            assert np.array_equal(session.values(), expected), f"window {t}"

    def test_pr_certified_per_window(self, stream):
        session = StreamingSession(N, "pr", prune=1e-7)
        for t in range(min(4, len(stream))):
            session.process_window(stream.batches[t])
            graph = stream.snapshot(t)
            _, cold = session.recompute_window(graph)
            err = float(np.max(np.abs(session.values() - cold)))
            assert err < 1e-5, f"window {t}: warm/cold err {err:.2e}"

    def test_lpa_peval_exact_then_stable(self, stream):
        session = StreamingSession(N, "lpa")
        session.process_window(stream.batches[0])
        assert np.array_equal(
            session.values(), label_propagation(stream.snapshot(0))
        )
        for t in range(1, min(4, len(stream))):
            session.process_window(stream.batches[t])

    def test_fingerprints_match_recompute_windows(self, stream):
        """Same program, cold vs warm: identical result fingerprints."""
        from repro.algorithms.incremental import fingerprint

        session = StreamingSession(N, "wcc")
        for t in range(min(3, len(stream))):
            session.process_window(stream.batches[t])
            _, cold = session.recompute_window(stream.snapshot(t))
            assert session.result_fingerprint() == fingerprint(cold)


class TestWindowEconomics:
    def test_inceval_prices_below_recompute(self, stream):
        session = StreamingSession(N, "wcc")
        result = session.process_window(stream.batches[0])
        assert result.mode == "peval"
        for t in range(1, min(4, len(stream))):
            result = session.process_window(stream.batches[t])
            cold, _ = session.recompute_window(stream.snapshot(t))
            assert result.mode == "inceval"
            assert result.priced.seconds < cold.seconds, f"window {t}"

    def test_empty_batch_prices_zero_supersteps(self, stream):
        session = StreamingSession(N, "wcc")
        session.process_window(stream.batches[0])
        before = session.values().copy()
        result = session.process_window(_empty_batch(1))
        assert isinstance(result, WindowResult)
        assert result.supersteps == 0
        assert result.new_edges == 0
        assert result.frontier_size == 0
        assert np.array_equal(session.values(), before)

    def test_duplicate_and_self_loop_batch_is_free(self, stream):
        session = StreamingSession(N, "pr")
        session.process_window(stream.batches[0])
        first = stream.batches[0]
        dup = EdgeBatch(
            time=1,
            src=np.concatenate([first.src[:10], np.array([7, 7])]),
            dst=np.concatenate([first.dst[:10], np.array([7, 7])]),
        )
        before = session.values().copy()
        result = session.process_window(dup)
        assert result.supersteps == 0
        assert result.frontier_size == 0
        assert np.array_equal(session.values(), before)

    def test_single_window_stream_is_peval_only(self):
        single = generate_stream(200, num_batches=1, seed=2)
        session = StreamingSession(200, "wcc")
        result = session.process_window(single.batches[0])
        assert result.mode == "peval"
        assert np.array_equal(session.values(), wcc(single.final_graph()))


class TestCrashRecovery:
    def test_crash_recovers_bit_identically(self, stream):
        windows = min(4, len(stream))
        schedule = FaultSchedule(
            crashes=(MachineCrash(superstep=2, machine=0),)
        )
        clean = StreamingSession(N, "wcc")
        crashed = StreamingSession(N, "wcc", fault_schedule=schedule,
                                   checkpoint_every=2)
        saw_recovery = False
        for t in range(windows):
            clean.process_window(stream.batches[t])
            result = crashed.process_window(stream.batches[t])
            if result.recovered:
                saw_recovery = True
                assert result.replayed_windows >= 1
                assert result.recovery.seconds > 0
            assert crashed.result_fingerprint() == clean.result_fingerprint()
        assert saw_recovery


class TestSessionValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(PlatformError):
            StreamingSession(10, "tc")

    def test_bad_checkpoint_interval(self):
        with pytest.raises(PlatformError):
            StreamingSession(10, "wcc", checkpoint_every=0)

    def test_algorithm_table_is_complete(self):
        batch = EdgeBatch(time=0, src=np.array([0, 1, 2]),
                          dst=np.array([1, 2, 3]))
        for algorithm in STREAM_ALGORITHMS:
            session = StreamingSession(10, algorithm)
            session.process_window(batch)
            assert session.values().shape == (10,)


class TestRunIncremental:
    def test_rejects_scalar_only_program(self, stream):
        graph = stream.snapshot(0)
        from repro.cluster.cost import NUM_PARTS, TraceRecorder

        engine = VertexCentricEngine(
            graph, hash_partition(graph, NUM_PARTS),
            TraceRecorder(NUM_PARTS), get_profile("Flash"), mode="bulk",
        )

        class ScalarOnly:
            pass

        with pytest.raises(PlatformError):
            engine.run_incremental(ScalarOnly())

    def test_empty_seed_quiesces_immediately(self, stream):
        from repro.cluster.cost import NUM_PARTS, TraceRecorder

        graph = stream.snapshot(0)
        recorder = TraceRecorder(NUM_PARTS)
        engine = VertexCentricEngine(
            graph, hash_partition(graph, NUM_PARTS),
            recorder, get_profile("Flash"), mode="bulk",
        )
        program = PageRankProgram()
        program.setup(graph)
        engine.run_incremental(program, start_superstep=1)
        assert len(recorder.trace.steps) == 0


class TestDeltaPageRankPhysics:
    def test_warm_matches_cold_fixpoint(self, stream):
        graph = stream.snapshot(1)
        from repro.cluster.cost import NUM_PARTS, TraceRecorder

        def run_cold():
            program = DeltaPageRankProgram(prune=1e-9)
            engine = VertexCentricEngine(
                graph, hash_partition(graph, NUM_PARTS),
                TraceRecorder(NUM_PARTS), get_profile("Flash"), mode="bulk",
            )
            engine.run(program)
            return program.ranks

        a, b = run_cold(), run_cold()
        assert np.array_equal(a, b)  # deterministic
        # The delta formulation drops pruned/dangling mass rather than
        # redistributing it, so the sum is near-1 within that leakage.
        assert abs(a.sum() - 1.0) < 1e-3

    def test_lpa_warm_state_is_stable(self, stream):
        session = StreamingSession(N, "lpa")
        for t in range(min(3, len(stream))):
            session.process_window(stream.batches[t])
        parity = lpa_is_stable(stream.snapshot(2), session.values())
        assert parity in (True, False)  # stability is well-defined
