"""Scalar-vs-bulk parity of the block-centric TC hot loop.

The vectorized pass (:func:`tc_blocks_bulk`) promises *bit-identical*
metering to the scalar pass — the same per-round ops, message counts,
and message bytes, and the exact triangle total — because every charged
quantity is integer-valued, so aggregation order cannot change float64
sums.  These tests diff whole Grape runs between the two paths and pin
the forward-edge flat view against the list-of-arrays form it mirrors.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import Graph, path_graph, random_graph, star_graph
from repro.platforms import get_platform
from repro.cluster import single_machine
from repro.platforms.common import forward_adjacency, forward_edge_arrays


def _clustered_graph() -> Graph:
    """Many triangles spread across blocks: dense 12-cliques chained by
    bridge edges, so intersections are non-trivial and pulls cross
    block boundaries."""
    rng = np.random.default_rng(11)
    src, dst = [], []
    for c in range(5):
        base = c * 12
        for i in range(12):
            for j in range(i + 1, 12):
                if rng.random() < 0.7:
                    src.append(base + i)
                    dst.append(base + j)
        if c:
            src.append(base - 1)
            dst.append(base)
    return Graph.from_edges(src, dst, num_vertices=60, directed=False)


RANDOM = random_graph(200, 900, seed=13)
CLUSTERED = _clustered_graph()
TRIANGLE_FREE = path_graph(40)
STAR = star_graph(9)


def _assert_traces_identical(a, b):
    assert a.supersteps == b.supersteps
    for step_a, step_b in zip(a.steps, b.steps):
        assert np.array_equal(step_a.ops, step_b.ops)
        assert np.array_equal(step_a.msg_count, step_b.msg_count)
        assert np.array_equal(step_a.msg_bytes, step_b.msg_bytes)


def _run_both(graph):
    platform = get_platform("Grape")
    cluster = single_machine()
    scalar = platform.run("tc", graph, cluster, engine_mode="scalar")
    bulk = platform.run("tc", graph, cluster, engine_mode="bulk")
    return scalar, bulk


class TestBlockTCParity:
    """Whole-platform Grape TC runs diffed between the two paths."""

    @pytest.mark.parametrize(
        "graph",
        [RANDOM, CLUSTERED, TRIANGLE_FREE, STAR],
        ids=["random", "clustered", "triangle-free", "star"],
    )
    def test_trace_and_count_identical(self, graph):
        scalar, bulk = _run_both(graph)
        assert scalar.values == bulk.values
        _assert_traces_identical(scalar.trace, bulk.trace)

    def test_auto_mode_matches_bulk_and_scalar(self):
        platform = get_platform("Grape")
        auto = platform.run("tc", RANDOM, single_machine())
        scalar, bulk = _run_both(RANDOM)
        assert auto.values == scalar.values == bulk.values
        _assert_traces_identical(auto.trace, bulk.trace)

    def test_empty_graph(self):
        empty = Graph.from_edges([], [], num_vertices=8, directed=False)
        scalar, bulk = _run_both(empty)
        assert scalar.values == bulk.values == 0
        _assert_traces_identical(scalar.trace, bulk.trace)

    def test_engine_span_carries_path(self):
        platform = get_platform("Grape")
        with obs.tracing() as tracer:
            platform.run("tc", RANDOM, single_machine(), engine_mode="bulk")
        (engine_span,) = [s for s in tracer.spans if s.category == "engine"]
        assert engine_span.attrs.get("path") == "bulk"
        with obs.tracing() as tracer:
            platform.run("tc", RANDOM, single_machine(), engine_mode="scalar")
        (engine_span,) = [s for s in tracer.spans if s.category == "engine"]
        assert engine_span.attrs.get("path") == "scalar"


class TestForwardEdgeArrays:
    """The flat CSR forward view mirrors the list-of-arrays form."""

    @pytest.mark.parametrize(
        "graph",
        [RANDOM, CLUSTERED, TRIANGLE_FREE, STAR],
        ids=["random", "clustered", "triangle-free", "star"],
    )
    def test_matches_forward_adjacency(self, graph):
        indptr, src, dst = forward_edge_arrays(graph)
        lists = forward_adjacency(graph)
        assert indptr.shape[0] == graph.num_vertices + 1
        for v, fv in enumerate(lists):
            seg = dst[indptr[v]:indptr[v + 1]]
            assert np.array_equal(seg, fv)
            assert (src[indptr[v]:indptr[v + 1]] == v).all()

    def test_keys_are_sorted(self):
        _, src, dst = forward_edge_arrays(RANDOM)
        keys = src * RANDOM.num_vertices + dst
        assert (np.diff(keys) > 0).all()
