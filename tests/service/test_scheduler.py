"""Scheduler tests: weighted round-robin fairness and admission preflight."""

import pytest

from repro.bench.runner import CaseSpec, resolve_spec
from repro.errors import ServiceError
from repro.service.scheduler import (
    AdmissionTicket,
    WeightedRoundRobin,
    preflight_case,
)


def _fill(wrr, tenant, weight, items):
    wrr.ensure_tenant(tenant, weight)
    for item in items:
        wrr.push(tenant, item)


class TestWeightedRoundRobin:
    def test_single_tenant_is_fifo(self):
        wrr = WeightedRoundRobin()
        _fill(wrr, "a", 1, [1, 2, 3])
        assert [wrr.pop()[1] for _ in range(3)] == [1, 2, 3]
        assert wrr.pop() is None

    def test_weights_set_dispatch_ratio(self):
        wrr = WeightedRoundRobin()
        _fill(wrr, "heavy", 3, ["h"] * 30)
        _fill(wrr, "light", 1, ["l"] * 30)
        first_twelve = [wrr.pop()[0] for _ in range(12)]
        assert first_twelve.count("heavy") == 9
        assert first_twelve.count("light") == 3

    def test_no_starvation(self):
        # Every backlogged tenant gets service each round, whatever the
        # weight spread.
        wrr = WeightedRoundRobin()
        _fill(wrr, "big", 100, ["b"] * 200)
        _fill(wrr, "small", 1, ["s"] * 5)
        seen = [wrr.pop()[0] for _ in range(101 * 2)]
        assert "small" in seen[:101]
        assert seen.count("small") >= 2

    def test_exhausted_tenant_yields_to_others(self):
        wrr = WeightedRoundRobin()
        _fill(wrr, "a", 2, ["a1"])
        _fill(wrr, "b", 1, ["b1", "b2"])
        order = [wrr.pop() for _ in range(3)]
        assert [t for t, _ in order].count("b") == 2
        assert wrr.pop() is None

    def test_drain_empties_everything(self):
        wrr = WeightedRoundRobin()
        _fill(wrr, "a", 2, list(range(5)))
        _fill(wrr, "b", 1, list(range(5)))
        assert len(list(wrr.drain())) == 10
        assert wrr.total_depth() == 0

    def test_depths_and_weights(self):
        wrr = WeightedRoundRobin()
        _fill(wrr, "a", 2, [1, 2])
        _fill(wrr, "b", 1, [3])
        assert wrr.depths() == {"a": 2, "b": 1}
        assert wrr.weights() == {"a": 2, "b": 1}
        assert wrr.total_depth() == 3

    def test_weight_update_does_not_grant_midround_credit(self):
        wrr = WeightedRoundRobin()
        _fill(wrr, "a", 1, ["a"] * 10)
        _fill(wrr, "b", 1, ["b"] * 10)
        wrr.pop()  # starts a round with 1 credit each
        wrr.ensure_tenant("a", 50)
        # Remaining dispatches of this round still honour the old credits.
        tenants = [wrr.pop()[0] for _ in range(1)]
        assert tenants == ["b"]

    def test_push_to_unknown_tenant_rejected(self):
        wrr = WeightedRoundRobin()
        with pytest.raises(ServiceError):
            wrr.push("ghost", 1)

    @pytest.mark.parametrize("weight", [0, -2, True, 1.5])
    def test_bad_weight_rejected(self, weight):
        wrr = WeightedRoundRobin()
        with pytest.raises(ServiceError):
            wrr.ensure_tenant("t", weight)

    def test_empty_scheduler_pops_none(self):
        assert WeightedRoundRobin().pop() is None


class TestPreflight:
    def test_admits_feasible_case(self):
        spec = CaseSpec.make("Flash", "pr", "S8-Std", scale_divisor=20000)
        ticket = preflight_case(spec)
        assert ticket.admitted
        assert ticket.bytes > 0

    def test_charge_matches_platform_admission(self):
        spec = CaseSpec.make("Flash", "pr", "S8-Std", scale_divisor=20000)
        platform, cluster, _, _ = resolve_spec(spec)
        from repro.datagen.catalog import build_dataset

        graph = build_dataset("S8-Std", scale_divisor=20000).graph
        expected = platform.admission_bytes("pr", graph, cluster)
        assert preflight_case(spec).bytes == expected

    def test_unsupported_algorithm_rejected(self):
        # G-thinker cannot express PR (the paper's coverage matrix).
        spec = CaseSpec.make("G-thinker", "pr", "S8-Std", scale_divisor=20000)
        ticket = preflight_case(spec)
        assert not ticket.admitted
        assert ticket.verdict == "unsupported"
        assert ticket.bytes == 0.0

    def test_config_violation_maps_to_error(self):
        from repro.cluster.spec import ClusterSpec

        spec = CaseSpec.make(
            "Ligra", "pr", "S8-Std", scale_divisor=20000,
            cluster=ClusterSpec(machines=4),
        )
        assert preflight_case(spec).verdict == "error"

    def test_red_bar_promotion_applies(self):
        # Pregel+/kc is a red-bar case: the preflight must see the same
        # 16-machine promotion run_case applies.
        spec = CaseSpec.make("Pregel+", "kc", "S8-Std", scale_divisor=20000)
        _, cluster, red_bar, _ = resolve_spec(spec)
        assert red_bar and cluster.machines == 16
        assert preflight_case(spec).admitted

    def test_ticket_properties(self):
        assert AdmissionTicket("ok", 10.0).admitted
        assert not AdmissionTicket("oom", 0.0, "too big").admitted
