"""Service tests: concurrent admission, dedupe, fairness, bit-identity.

The async tests drive the real :class:`BenchmarkService` event loop via
``asyncio.run`` inside synchronous test functions (no pytest-asyncio
dependency).  Execution-level assertions instrument
:meth:`repro.platforms.base.Platform.run` — the one chokepoint every
*real* execution passes through and every memo/store/dedup hit skips.
"""

import asyncio
import random
import threading

import pytest

from repro.bench import store as store_mod
from repro.bench.runner import clear_case_cache
from repro.errors import SchemaError, ServiceError
from repro.platforms.base import Platform
from repro.service import (
    BenchmarkService,
    CaseRequest,
    ServiceServer,
    SubmitRequest,
    case_key,
    outcome_fingerprint,
    preflight_case,
)

# Small, fast, distinct cases (scale_divisor=20000 keeps graphs tiny).
POOL = (
    CaseRequest.make("Flash", "pr", "S8-Std", scale_divisor=20000),
    CaseRequest.make("Grape", "wcc", "S8-Std", scale_divisor=20000),
    CaseRequest.make("Pregel+", "sssp", "S8-Std", scale_divisor=20000),
    CaseRequest.make("PowerGraph", "lpa", "S8-Std", scale_divisor=20000),
)


@pytest.fixture(autouse=True)
def _isolated_session():
    clear_case_cache()
    store_mod.set_artifact_store(None)
    yield
    clear_case_cache()
    store_mod.set_artifact_store(None)


class ExecutionProbe:
    """Counts real platform executions and their concurrency."""

    def __init__(self):
        self.lock = threading.Lock()
        self.counts = {}
        self.current = 0
        self.peak = 0

    def patch(self, monkeypatch):
        probe = self
        original = Platform.run

        def counted(self, algorithm, graph, cluster, **kwargs):
            key = (self.name, algorithm)
            with probe.lock:
                probe.counts[key] = probe.counts.get(key, 0) + 1
                probe.current += 1
                probe.peak = max(probe.peak, probe.current)
            try:
                return original(self, algorithm, graph, cluster, **kwargs)
            finally:
                with probe.lock:
                    probe.current -= 1

        monkeypatch.setattr(Platform, "run", counted)
        return self


def _direct_fingerprints(requests):
    """Sequential cold-session fingerprints, one per case request."""
    clear_case_cache()
    fps = {}
    for req in requests:
        spec = req.to_spec()
        key = case_key(spec)
        if key not in fps:
            fps[key] = outcome_fingerprint(spec.run())
    return fps


class TestConcurrentAdmission:
    """Property-style: random overlapping tenant grids, three seeds."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_slots_dedup_and_bit_identity(self, seed, monkeypatch):
        rng = random.Random(seed)
        jobs = rng.randint(2, 4)
        tenants = [f"tenant-{i}" for i in range(rng.randint(3, 6))]
        requests = [
            SubmitRequest(
                tenant=tenant,
                cases=tuple(
                    rng.choice(POOL) for _ in range(rng.randint(2, 5))
                ),
                priority=rng.randint(1, 4),
            )
            for tenant in tenants
        ]
        direct = _direct_fingerprints(case for r in requests for case in r.cases)

        clear_case_cache()
        probe = ExecutionProbe().patch(monkeypatch)

        async def scenario():
            async with BenchmarkService(jobs=jobs) as service:
                job_ids = [await service.submit(r) for r in requests]
                results = [await service.result(j) for j in job_ids]
                return results, service.metrics()

        results, metrics = asyncio.run(scenario())

        # 1. The slot budget is never exceeded, measured at the real
        #    execution chokepoint (not the service's own accounting).
        assert probe.peak <= jobs
        assert metrics["inflight"]["peak"] <= jobs

        # 2. Identical specs dedupe to ONE real execution each.
        unique_keys = {
            case_key(c.to_spec()) for r in requests for c in r.cases
        }
        assert sum(probe.counts.values()) == len(unique_keys)
        assert all(count == 1 for count in probe.counts.values())

        # 3. Every served outcome is bit-identical to a sequential
        #    cold-session run of the same case.
        for request, result in zip(requests, results):
            assert result.tenant == request.tenant
            for case, outcome in zip(request.cases, result.outcomes):
                assert outcome_fingerprint(outcome) == \
                    direct[case_key(case.to_spec())]

        # 4. Bookkeeping adds up.
        total = sum(len(r.cases) for r in requests)
        assert metrics["cases"]["submitted"] == total
        assert metrics["cases"]["completed"] == total
        assert metrics["queues"]["depth_total"] == 0


class TestByteBudget:
    def test_inflight_bytes_never_exceed_budget(self):
        charges = [preflight_case(c.to_spec()).bytes for c in POOL]
        # Room for the largest case plus half the smallest: at most one
        # big case (or a couple of small ones) may hold bytes at once.
        budget = max(charges) + min(charges) / 2

        async def scenario():
            async with BenchmarkService(
                jobs=4, memory_budget_bytes=budget
            ) as service:
                job = await service.submit(
                    SubmitRequest(tenant="t", cases=POOL * 2)
                )
                await service.result(job)
                return service.metrics()

        metrics = asyncio.run(scenario())
        assert 0 < metrics["inflight"]["peak_bytes"] <= budget
        assert metrics["inflight"]["byte_budget"] == budget
        assert metrics["inflight"]["bytes"] == 0.0

    def test_rejected_case_outcome_identical_to_direct(self):
        # G-thinker/pr fails admission; the service must serve the same
        # structured failure a direct call produces.
        bad = CaseRequest.make("G-thinker", "pr", "S8-Std",
                               scale_divisor=20000)
        direct = _direct_fingerprints([bad])
        clear_case_cache()

        async def scenario():
            async with BenchmarkService(
                jobs=2, memory_budget_bytes=1e12
            ) as service:
                job = await service.submit(
                    SubmitRequest(tenant="t", cases=(bad,))
                )
                result = await service.result(job)
                return result, service.metrics()

        result, metrics = asyncio.run(scenario())
        assert result.outcomes[0].status == "unsupported"
        assert outcome_fingerprint(result.outcomes[0]) == \
            direct[case_key(bad.to_spec())]
        assert metrics["cases"]["admission_rejected"] == 1


class TestServiceSurface:
    def test_status_progresses_to_done(self):
        async def scenario():
            async with BenchmarkService(jobs=1) as service:
                job = await service.submit(
                    SubmitRequest(tenant="t", cases=(POOL[0],))
                )
                first = service.status(job)
                await service.result(job)
                last = service.status(job)
                return first, last

        first, last = asyncio.run(scenario())
        assert first.state in ("queued", "running")
        assert (last.state, last.completed_cases) == ("done", 1)

    def test_result_without_wait_raises_while_pending(self):
        async def scenario():
            async with BenchmarkService(jobs=1) as service:
                job = await service.submit(
                    SubmitRequest(tenant="t", cases=(POOL[0],))
                )
                with pytest.raises(ServiceError):
                    await service.result(job, wait=False)
                await service.result(job)

        asyncio.run(scenario())

    def test_unknown_job_and_bad_request_rejected(self):
        async def scenario():
            async with BenchmarkService(jobs=1) as service:
                with pytest.raises(ServiceError):
                    service.status("job-999999")
                with pytest.raises(SchemaError):
                    await service.submit({"not": "a request"})
                # Keep the service busy-free before clean shutdown.
                job = await service.submit(
                    SubmitRequest(tenant="t", cases=(POOL[0],))
                )
                await service.result(job)

        asyncio.run(scenario())

    def test_submit_after_close_rejected(self):
        async def scenario():
            service = BenchmarkService(jobs=1)
            await service.start()
            await service.close()
            with pytest.raises(ServiceError):
                await service.submit(
                    SubmitRequest(tenant="t", cases=(POOL[0],))
                )

        asyncio.run(scenario())

    def test_bad_constructor_args_rejected(self):
        with pytest.raises(ServiceError):
            BenchmarkService(jobs=0)
        with pytest.raises(ServiceError):
            BenchmarkService(mode="fiber")
        with pytest.raises(ServiceError):
            BenchmarkService(memory_budget_bytes=-1.0)

    def test_store_hits_across_service_restarts(self, tmp_path):
        # Two service generations over the same store: the second must
        # serve from the persistent layer, not re-execute.
        store_mod.set_artifact_store(store_mod.ArtifactStore(tmp_path))
        request = SubmitRequest(tenant="t", cases=POOL[:2])

        async def generation():
            async with BenchmarkService(jobs=2) as service:
                job = await service.submit(request)
                return await service.result(job)

        first = asyncio.run(generation())
        clear_case_cache()  # new session: memo gone, store remains
        store = store_mod.get_artifact_store()
        hits_before = store.stats()["hits"]
        second = asyncio.run(generation())
        assert store.stats()["hits"] > hits_before
        assert first.fingerprints == second.fingerprints


class TestProcessMode:
    def test_process_mode_outcomes_bit_identical(self, tmp_path):
        request = SubmitRequest(tenant="t", cases=POOL[:2])
        direct = _direct_fingerprints(request.cases)
        clear_case_cache()
        store_mod.set_artifact_store(store_mod.ArtifactStore(tmp_path))

        async def scenario():
            async with BenchmarkService(jobs=2, mode="process") as service:
                job = await service.submit(request)
                return await service.result(job)

        result = asyncio.run(scenario())
        for case, outcome in zip(request.cases, result.outcomes):
            assert outcome_fingerprint(outcome) == \
                direct[case_key(case.to_spec())]


class TestTcpServer:
    def test_protocol_round_trip(self):
        import json

        async def scenario():
            async with BenchmarkService(jobs=2) as service:
                server = await ServiceServer(service, port=0).start()
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)

                async def rpc(payload):
                    writer.write(json.dumps(payload).encode() + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                assert (await rpc({"op": "ping"}))["ok"]
                submit = await rpc({
                    "op": "submit",
                    "request": SubmitRequest(
                        tenant="alice", cases=(POOL[0],)
                    ).to_wire(),
                })
                assert submit["ok"]
                result = await rpc({
                    "op": "result", "job_id": submit["job_id"],
                })
                assert result["result"]["outcomes"][0]["status"] == "ok"
                assert result["result"]["outcomes"][0]["fingerprint"]
                metrics = await rpc({"op": "metrics"})
                assert metrics["metrics"]["cases"]["completed"] == 1
                bad = await rpc({"op": "nope"})
                assert not bad["ok"] and "unknown op" in bad["error"]
                malformed = await rpc({"op": "submit", "request": {}})
                assert not malformed["ok"]
                down = await rpc({"op": "shutdown"})
                assert down["ok"]
                writer.close()
                await server.wait_closed()

        asyncio.run(scenario())
