"""Schema tests: versioning, wire round-trips, content keys."""

import json

import pytest

from repro.bench.runner import CaseSpec, clear_case_cache
from repro.cluster.spec import ClusterSpec, single_machine
from repro.errors import SchemaError
from repro.service.schema import (
    API_VERSION,
    CaseRequest,
    JobResult,
    SubmitRequest,
    canonical_json,
    case_key,
    check_api_version,
    outcome_fingerprint,
    outcome_to_wire,
    request_key,
    submit_request_from_wire,
)


def _case(**kw):
    kw.setdefault("scale_divisor", 20000)
    return CaseRequest.make("Flash", "pr", "S8-Std", **kw)


class TestVersioning:
    def test_current_version_accepted(self):
        assert check_api_version(API_VERSION) == API_VERSION

    def test_minor_versions_compatible(self):
        assert check_api_version("1.9") == "1.9"

    @pytest.mark.parametrize("bad", ["2.0", "0.1", "", "one", "1.x", None, 1])
    def test_incompatible_or_malformed_rejected(self, bad):
        with pytest.raises(SchemaError):
            check_api_version(bad)

    def test_submit_request_validates_version(self):
        with pytest.raises(SchemaError):
            SubmitRequest(tenant="t", cases=(_case(),), api_version="2.0")


class TestCaseRequest:
    def test_round_trips_spec(self):
        spec = CaseSpec.make("Grape", "sssp", "S8-Dense", weighted=True,
                             scale_divisor=4000, tolerance=1e-6)
        assert CaseRequest.from_spec(spec).to_spec() == spec

    def test_wire_round_trip(self):
        req = _case(weighted=True, cluster=single_machine(8))
        decoded = CaseRequest.from_wire(json.loads(
            canonical_json(req.to_wire())
        ))
        assert decoded == req
        assert decoded.to_spec() == req.to_spec()

    def test_wire_round_trip_preserves_case_key(self):
        req = _case(cluster=ClusterSpec(machines=4, threads_per_machine=16))
        decoded = CaseRequest.from_wire(req.to_wire())
        assert case_key(decoded.to_spec()) == case_key(req.to_spec())

    def test_unknown_optional_keys_ignored(self):
        wire = _case().to_wire()
        wire["future_minor_field"] = "whatever"
        assert CaseRequest.from_wire(wire) == _case()

    def test_non_scalar_param_rejected_on_encode(self):
        req = CaseRequest.make("Flash", "pr", "S8-Std", weights=[1, 2])
        with pytest.raises(SchemaError):
            req.to_wire()

    @pytest.mark.parametrize("mutate", [
        lambda w: w.pop("platform"),
        lambda w: w.update(platform=""),
        lambda w: w.update(cluster={"bogus_knob": 3}),
        lambda w: w.update(params={"x": [1]}),
        lambda w: w.update(scale_divisor="big"),
    ])
    def test_malformed_wire_rejected(self, mutate):
        wire = _case().to_wire()
        mutate(wire)
        with pytest.raises(SchemaError):
            CaseRequest.from_wire(wire)


class TestSubmitRequest:
    def test_wire_round_trip(self):
        req = SubmitRequest(tenant="alice", cases=(_case(),), priority=3)
        decoded = submit_request_from_wire(req.to_wire())
        assert decoded == req

    def test_empty_cases_rejected(self):
        with pytest.raises(SchemaError):
            SubmitRequest(tenant="t", cases=())

    def test_bad_tenant_rejected(self):
        with pytest.raises(SchemaError):
            SubmitRequest(tenant="", cases=(_case(),))

    @pytest.mark.parametrize("priority", [0, -1, True, 1.5, "2"])
    def test_bad_priority_rejected(self, priority):
        with pytest.raises(SchemaError):
            SubmitRequest(tenant="t", cases=(_case(),), priority=priority)

    def test_request_key_is_content_addressed(self):
        a = SubmitRequest(tenant="t", cases=(_case(),), priority=2)
        b = SubmitRequest(tenant="t", cases=(_case(),), priority=2)
        c = SubmitRequest(tenant="u", cases=(_case(),), priority=2)
        assert request_key(a) == request_key(b)
        assert request_key(a) != request_key(c)


class TestOutcomeIdentity:
    def test_fingerprint_matches_direct_execution(self):
        clear_case_cache()
        spec = _case().to_spec()
        first = spec.run()
        clear_case_cache()
        second = spec.run()
        assert outcome_fingerprint(first) == outcome_fingerprint(second)

    def test_wire_outcome_carries_fingerprint(self):
        clear_case_cache()
        outcome = _case().to_spec().run()
        wire = outcome_to_wire(outcome)
        assert wire["fingerprint"] == outcome_fingerprint(outcome)
        assert wire["status"] == "ok"
        json.dumps(wire)  # must be JSON-encodable

    def test_job_result_fingerprints(self):
        clear_case_cache()
        outcome = _case().to_spec().run()
        result = JobResult(job_id="j", tenant="t", outcomes=(outcome,))
        assert result.fingerprints == (outcome_fingerprint(outcome),)
        json.dumps(result.to_wire())


def test_canonical_json_is_deterministic():
    assert canonical_json({"b": 1, "a": [2, {"z": 3, "y": 4}]}) == \
        canonical_json({"a": [2, {"y": 4, "z": 3}], "b": 1})
