"""Tests for the Table-5 run metrics."""

import pytest

from repro.cluster import RunMetrics


@pytest.fixture
def metrics() -> RunMetrics:
    return RunMetrics(
        upload_seconds=2.0,
        run_seconds=10.0,
        writeback_seconds=0.5,
        edges_processed=1_000_000,
        compute_ops=5e6,
        messages=200_000,
        remote_bytes=1.6e6,
        supersteps=11,
    )


def test_makespan(metrics):
    assert metrics.makespan_seconds == pytest.approx(12.5)


def test_throughput(metrics):
    assert metrics.throughput_edges_per_second == pytest.approx(100_000.0)


def test_throughput_zero_time():
    m = RunMetrics(0, 0, 0, 10, 0, 0, 0, 0)
    assert m.throughput_edges_per_second == float("inf")


def test_as_row_keys(metrics):
    row = metrics.as_row()
    assert row["makespan_s"] == pytest.approx(12.5)
    assert row["edges_per_s"] == pytest.approx(100_000.0)
    assert row["supersteps"] == 11


def test_throughput_zero_run_with_zero_edges():
    # An empty run that also took no time: still inf, never 0/0 = nan.
    m = RunMetrics(0, 0, 0, 0, 0, 0, 0, 0)
    assert m.throughput_edges_per_second == float("inf")


def test_throughput_zero_edges_positive_time():
    m = RunMetrics(0, 1.0, 0, 0, 0, 0, 0, 0)
    assert m.throughput_edges_per_second == 0.0


def test_zero_superstep_run():
    # E.g. an algorithm whose frontier is empty from the start.
    m = RunMetrics(
        upload_seconds=1.0,
        run_seconds=0.25,
        writeback_seconds=0.1,
        edges_processed=500,
        compute_ops=0.0,
        messages=0,
        remote_bytes=0.0,
        supersteps=0,
    )
    assert m.makespan_seconds == pytest.approx(1.35)
    assert m.throughput_edges_per_second == pytest.approx(2000.0)
    row = m.as_row()
    assert row["supersteps"] == 0.0
    assert row["messages"] == 0.0


@pytest.mark.parametrize(
    "upload,run,writeback",
    [(0.0, 0.0, 0.0), (1.5, 0.0, 0.0), (0.0, 2.0, 0.0),
     (0.0, 0.0, 0.75), (3.25, 7.5, 0.125)],
)
def test_makespan_is_sum_of_phases(upload, run, writeback):
    m = RunMetrics(upload, run, writeback, 1, 0, 0, 0, 1)
    assert m.makespan_seconds == pytest.approx(upload + run + writeback)
    assert m.as_row()["makespan_s"] == pytest.approx(m.makespan_seconds)
