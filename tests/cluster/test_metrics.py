"""Tests for the Table-5 run metrics."""

import pytest

from repro.cluster import RunMetrics


@pytest.fixture
def metrics() -> RunMetrics:
    return RunMetrics(
        upload_seconds=2.0,
        run_seconds=10.0,
        writeback_seconds=0.5,
        edges_processed=1_000_000,
        compute_ops=5e6,
        messages=200_000,
        remote_bytes=1.6e6,
        supersteps=11,
    )


def test_makespan(metrics):
    assert metrics.makespan_seconds == pytest.approx(12.5)


def test_throughput(metrics):
    assert metrics.throughput_edges_per_second == pytest.approx(100_000.0)


def test_throughput_zero_time():
    m = RunMetrics(0, 0, 0, 10, 0, 0, 0, 0)
    assert m.throughput_edges_per_second == float("inf")


def test_as_row_keys(metrics):
    row = metrics.as_row()
    assert row["makespan_s"] == pytest.approx(12.5)
    assert row["edges_per_s"] == pytest.approx(100_000.0)
    assert row["supersteps"] == 11
