"""Tests for the trace-based BSP cost model."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    CostParameters,
    TraceRecorder,
    amdahl_efficiency,
    check_memory,
    price_trace,
    scale_out,
    single_machine,
)
from repro.errors import ClusterConfigError, OutOfMemoryError


def _simple_trace(ops_per_part=1000.0, parts=16, steps=3,
                  remote_pairs=()):
    rec = TraceRecorder(parts)
    for _ in range(steps):
        rec.begin_superstep()
        for p in range(parts):
            rec.add_compute(p, ops_per_part)
        for (i, j, nbytes, count) in remote_pairs:
            rec.add_message(i, j, nbytes, count=count)
        rec.end_superstep()
    return rec.trace


class TestAmdahl:
    def test_single_thread_is_one(self):
        assert amdahl_efficiency(1, 0.9) == pytest.approx(1.0)

    def test_fully_parallel(self):
        assert amdahl_efficiency(32, 1.0) == pytest.approx(32.0)

    def test_fully_serial(self):
        assert amdahl_efficiency(32, 0.0) == pytest.approx(1.0)

    def test_rejects_zero_threads(self):
        with pytest.raises(ClusterConfigError):
            amdahl_efficiency(0, 0.5)


class TestRecorder:
    def test_superstep_protocol_enforced(self):
        rec = TraceRecorder(4)
        with pytest.raises(ClusterConfigError):
            rec.add_compute(0, 1.0)
        rec.begin_superstep()
        with pytest.raises(ClusterConfigError):
            rec.begin_superstep()
        rec.end_superstep()
        assert rec.trace.supersteps == 1

    def test_totals(self):
        trace = _simple_trace(ops_per_part=10.0, parts=4, steps=2,
                              remote_pairs=[(0, 1, 8.0, 5)])
        assert trace.total_ops == pytest.approx(80.0)
        assert trace.total_messages == 10
        assert trace.total_message_bytes == pytest.approx(80.0)

    def test_add_compute_rejects_out_of_range_part(self):
        """Regression: a buggy partition map used to be masked by a
        silent ``% parts`` wrap; it must raise instead."""
        rec = TraceRecorder(4)
        rec.begin_superstep()
        with pytest.raises(ClusterConfigError):
            rec.add_compute(5, 7.0)
        with pytest.raises(ClusterConfigError):
            rec.add_compute(-1, 7.0)

    def test_add_message_rejects_out_of_range_part(self):
        rec = TraceRecorder(4)
        rec.begin_superstep()
        with pytest.raises(ClusterConfigError):
            rec.add_message(0, 4, 8.0)
        with pytest.raises(ClusterConfigError):
            rec.add_message(7, 0, 8.0)
        # In-range charges still land where they were addressed.
        rec.add_message(3, 1, 8.0, count=2)
        rec.end_superstep()
        assert rec.trace.steps[0].msg_count[3, 1] == 2

    def test_add_message_block_charges_raw_byte_total(self):
        rec = TraceRecorder(4)
        rec.begin_superstep()
        rec.add_message_block(0, 2, total_bytes=40.0, count=3)
        rec.end_superstep()
        assert rec.trace.steps[0].msg_count[0, 2] == 3
        assert rec.trace.steps[0].msg_bytes[0, 2] == pytest.approx(40.0)
        with pytest.raises(ClusterConfigError):
            rec.add_message_block(0, 9, total_bytes=8.0, count=1)


class TestPricing:
    def test_more_threads_faster(self):
        trace = _simple_trace()
        params = CostParameters(parallel_fraction=0.95)
        t1 = price_trace(trace, single_machine(1), params).seconds
        t32 = price_trace(trace, single_machine(32), params).seconds
        assert t32 < t1

    def test_speedup_bounded_by_amdahl(self):
        trace = _simple_trace(ops_per_part=1e6)
        params = CostParameters(parallel_fraction=0.9)
        t1 = price_trace(trace, single_machine(1), params).seconds
        t32 = price_trace(trace, single_machine(32), params).seconds
        assert t1 / t32 <= amdahl_efficiency(32, 0.9) + 1e-6

    def test_parallel_slackness_limits_small_steps(self):
        tiny = _simple_trace(ops_per_part=1.0, steps=1)
        params = CostParameters(parallel_fraction=1.0,
                                work_granularity_ops=24.0)
        t1 = price_trace(tiny, single_machine(1), params).seconds
        t32 = price_trace(tiny, single_machine(32), params).seconds
        # 16 ops per machine < granularity: no parallel speedup at all
        assert t1 / t32 == pytest.approx(1.0, rel=0.05)

    def test_more_machines_spread_compute(self):
        trace = _simple_trace(ops_per_part=1e5)
        params = CostParameters()
        t1 = price_trace(trace, scale_out(1), params).compute_seconds
        t16 = price_trace(trace, scale_out(16), params).compute_seconds
        assert t16 < t1 / 8

    def test_messages_local_on_one_machine(self):
        trace = _simple_trace(remote_pairs=[(0, 9, 8.0, 100)])
        params = CostParameters()
        one = price_trace(trace, scale_out(1), params)
        two = price_trace(trace, scale_out(2), params)
        assert one.network_seconds == 0.0
        assert two.network_seconds > 0.0

    def test_load_imbalance_prices_by_max(self):
        rec = TraceRecorder(2)
        rec.begin_superstep()
        rec.add_compute(0, 1000.0)
        rec.add_compute(1, 10.0)
        rec.end_superstep()
        balanced = TraceRecorder(2)
        balanced.begin_superstep()
        balanced.add_compute(0, 505.0)
        balanced.add_compute(1, 505.0)
        balanced.end_superstep()
        params = CostParameters()
        skewed_t = price_trace(rec.trace, scale_out(2), params).seconds
        balanced_t = price_trace(balanced.trace, scale_out(2), params).seconds
        assert skewed_t > 1.5 * balanced_t

    def test_barriers_scale_with_machines(self):
        trace = _simple_trace(ops_per_part=0.0, steps=10)
        params = CostParameters()
        one = price_trace(trace, scale_out(1), params)
        sixteen = price_trace(trace, scale_out(16), params)
        assert sixteen.barrier_seconds > one.barrier_seconds

    def test_startup_added_once(self):
        trace = _simple_trace(ops_per_part=0.0, steps=1)
        base = price_trace(trace, single_machine(1), CostParameters()).seconds
        with_startup = price_trace(
            trace, single_machine(1), CostParameters(startup_seconds=5.0)
        ).seconds
        assert with_startup == pytest.approx(base + 5.0)

    def test_placement_validation(self):
        trace = _simple_trace()
        with pytest.raises(ClusterConfigError):
            price_trace(trace, single_machine(1), CostParameters(),
                        placement=np.zeros(3, dtype=np.int64))

    def test_breakdown_sums(self):
        trace = _simple_trace(remote_pairs=[(0, 9, 64.0, 50)])
        params = CostParameters(startup_seconds=1.0)
        priced = price_trace(trace, scale_out(4), params)
        assert priced.seconds == pytest.approx(
            1.0 + priced.compute_seconds + priced.network_seconds
            + priced.barrier_seconds
        )


class TestParameterValidation:
    def test_rejects_bad_multiplier(self):
        with pytest.raises(ClusterConfigError):
            CostParameters(compute_multiplier=0.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ClusterConfigError):
            CostParameters(parallel_fraction=1.5)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ClusterConfigError):
            CostParameters(work_granularity_ops=0.0)


class TestMemoryAndSpec:
    def test_check_memory_passes(self):
        check_memory(1000, single_machine(), what="x")

    def test_check_memory_raises(self):
        spec = ClusterSpec(machines=1, memory_per_machine_bytes=100)
        with pytest.raises(OutOfMemoryError):
            check_memory(1000, spec, what="x")

    def test_spec_totals(self):
        spec = scale_out(4, threads=8)
        assert spec.total_threads == 32
        assert spec.total_memory_bytes == 4 * spec.memory_per_machine_bytes

    def test_spec_with_helpers(self):
        spec = single_machine(4)
        assert spec.with_machines(3).machines == 3
        assert spec.with_threads(16).threads_per_machine == 16

    def test_spec_validation(self):
        with pytest.raises(ClusterConfigError):
            ClusterSpec(machines=0)
        with pytest.raises(ClusterConfigError):
            ClusterSpec(threads_per_machine=0)
        with pytest.raises(ClusterConfigError):
            ClusterSpec(memory_per_machine_bytes=0)
