"""Unit tests for the Table-1 benchmark landscape runner."""

import pytest

from repro.bench.landscape import BenchmarkProfile, run_landscape


@pytest.fixture(scope="module")
def profiles():
    return run_landscape()


def test_five_benchmarks(profiles):
    assert [p.name for p in profiles] == [
        "Graph500", "WGB", "BigDataBench", "LDBC Graphalytics", "Ours"
    ]


def test_only_ours_has_usability(profiles):
    flags = {p.name: p.usability_axis for p in profiles}
    assert flags == {
        "Graph500": False, "WGB": False, "BigDataBench": False,
        "LDBC Graphalytics": False, "Ours": True,
    }


def test_only_ours_controls_diameter(profiles):
    for p in profiles:
        assert ("diameter" in p.controls) == (p.name == "Ours")


def test_samples_are_measured(profiles):
    by_name = {p.name: p for p in profiles}
    assert by_name["Graph500"].sample["bfs_harmonic_teps"] > 0
    assert by_name["WGB"].sample["k3_hop_vertices"] > 0
    assert by_name["WGB"].sample["dynamic_incremental_ops"] > 0
    assert by_name["BigDataBench"].sample["suite_seconds"] > 0
    assert by_name["Ours"].sample["algorithms_run"] == 8


def test_profile_dataclass_defaults():
    p = BenchmarkProfile(name="X", workloads="Y", controls="scale",
                         usability_axis=False)
    assert p.sample == {}
