"""Edge-case tests for ``run_case``: cache-key sensitivity, the shared
engine options, transient-fault retries, and red-bar promotion."""

import dataclasses

import pytest

from repro.bench import RETRY_LIMIT, clear_case_cache
from repro.bench.runner import run_case
from repro.cluster import ClusterSpec, single_machine
from repro.faults import FaultSchedule, MachineCrash


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts and ends with an empty memo cache."""
    clear_case_cache()
    yield
    clear_case_cache()


class TestCacheKey:
    def test_engine_mode_caches_separately(self):
        scalar = run_case("Pregel+", "pr", "S8-Std", engine_mode="scalar")
        bulk = run_case("Pregel+", "pr", "S8-Std", engine_mode="bulk")
        assert scalar is not bulk
        assert scalar.status == bulk.status == "ok"
        # Same metered work on both paths (the parity invariant), so
        # the cache split is by key, not by outcome.
        assert scalar.seconds == bulk.seconds

    def test_fault_schedule_caches_separately(self):
        plain = run_case("Pregel+", "pr", "S8-Std")
        # Machine 9 does not exist on one machine: the schedule is
        # non-empty (checkpoints are written) but the crash is inert.
        sched = FaultSchedule(crashes=(MachineCrash(2, machine=9),))
        faulted = run_case("Pregel+", "pr", "S8-Std", fault_schedule=sched)
        assert plain is not faulted
        assert faulted.status == "ok"
        assert faulted.seconds > plain.seconds

    def test_checkpoint_interval_caches_separately(self):
        sched = FaultSchedule(crashes=(MachineCrash(10**6, machine=0),))
        tight = run_case("Pregel+", "pr", "S8-Std", fault_schedule=sched,
                         checkpoint_interval=1)
        loose = run_case("Pregel+", "pr", "S8-Std", fault_schedule=sched,
                         checkpoint_interval=8)
        assert tight is not loose
        assert (tight.result.priced.checkpoint_seconds
                > loose.result.priced.checkpoint_seconds)

    def test_same_schedule_hits_cache(self):
        sched = FaultSchedule(retransmit_rate=0.1, seed=3)
        a = run_case("Pregel+", "pr", "S8-Std", fault_schedule=sched)
        b = run_case("Pregel+", "pr", "S8-Std",
                     fault_schedule=FaultSchedule(retransmit_rate=0.1,
                                                  seed=3))
        assert a is b

    def test_clear_case_cache_forces_rerun(self):
        a = run_case("Pregel+", "pr", "S8-Std")
        clear_case_cache()
        b = run_case("Pregel+", "pr", "S8-Std")
        assert a is not b
        assert a.seconds == b.seconds


class TestStatuses:
    def test_unknown_engine_mode_is_error(self):
        outcome = run_case("Pregel+", "pr", "S8-Std", engine_mode="warp")
        assert outcome.status == "error"
        assert "engine_mode" in outcome.detail

    def test_bad_checkpoint_interval_is_error(self):
        outcome = run_case("Pregel+", "pr", "S8-Std", checkpoint_interval=0)
        assert outcome.status == "error"

    def test_transient_exhausts_retries(self):
        sched = FaultSchedule(transient_failures=RETRY_LIMIT + 1)
        outcome = run_case("Pregel+", "pr", "S8-Std", fault_schedule=sched)
        assert outcome.status == "transient"
        assert outcome.result is None
        assert outcome.attempts == RETRY_LIMIT + 1
        assert outcome.retry_backoff_seconds > 0

    def test_transient_then_success(self):
        sched = FaultSchedule(transient_failures=1)
        outcome = run_case("Pregel+", "pr", "S8-Std", fault_schedule=sched)
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.retry_backoff_seconds == pytest.approx(0.5)

    def test_backoff_grows_exponentially(self):
        sched = FaultSchedule(transient_failures=3)
        outcome = run_case("Pregel+", "pr", "S8-Std", fault_schedule=sched)
        assert outcome.status == "ok"
        assert outcome.attempts == 4
        # 0.5 + 1.0 + 2.0
        assert outcome.retry_backoff_seconds == pytest.approx(3.5)

    def test_default_outcome_fields(self):
        outcome = run_case("Pregel+", "pr", "S8-Std")
        assert outcome.attempts == 1
        assert outcome.retry_backoff_seconds == 0.0


class TestRedBarPromotion:
    def test_promotion_preserves_custom_spec_fields(self):
        custom = dataclasses.replace(
            single_machine(32),
            disk_bandwidth_bytes_per_second=123.0,
            failover_seconds=7.0,
        )
        outcome = run_case("GraphX", "kc", "S8-Std", cluster=custom)
        assert outcome.red_bar
        promoted = outcome.result.cluster
        assert promoted.machines == 16
        assert promoted.disk_bandwidth_bytes_per_second == 123.0
        assert promoted.failover_seconds == 7.0

    def test_promotion_preserves_threads_and_memory(self):
        custom = ClusterSpec(machines=1, threads_per_machine=8,
                             memory_per_machine_bytes=2**31)
        outcome = run_case("GraphX", "kc", "S8-Std", cluster=custom)
        promoted = outcome.result.cluster
        assert promoted.threads_per_machine == 8
        assert promoted.memory_per_machine_bytes == 2**31
