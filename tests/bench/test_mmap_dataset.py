"""The mmap dataset format: out-of-core builds, zero-copy shipping,
and the format knob that selects it.

The contract: ``--dataset-format mmap`` changes *where the bytes live*
(an on-disk CSR file opened via ``numpy.memmap``), never what any case
computes — outcomes are bit-identical to the in-memory format at any
``--jobs`` value and any cache temperature.
"""

import numpy as np
import pytest

from repro.bench import (
    ArtifactStore,
    CaseSpec,
    clear_case_cache,
    set_artifact_store,
)
from repro.bench.pool import run_cases
from repro.datagen import (
    build_dataset,
    clear_dataset_cache,
    get_dataset_format,
    set_dataset_format,
)
from repro.errors import GeneratorParameterError

KW = dict(scale_divisor=8000, degree_divisor=6, seed=7)


def _mmap_backed(array: np.ndarray) -> bool:
    a = array
    while a is not None:
        if isinstance(a, np.memmap):
            return True
        a = a.base
    return False


@pytest.fixture
def store(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    previous = set_artifact_store(store)
    clear_case_cache()
    clear_dataset_cache()
    try:
        yield store
    finally:
        set_artifact_store(previous)
        clear_case_cache()
        clear_dataset_cache()


@pytest.fixture
def mmap_format():
    previous = set_dataset_format("mmap")
    clear_dataset_cache()
    try:
        yield
    finally:
        set_dataset_format(previous)
        clear_dataset_cache()


class TestFormatKnob:
    def test_default_is_memory(self):
        assert get_dataset_format() == "memory"

    def test_set_returns_previous(self):
        assert set_dataset_format("mmap") == "memory"
        assert get_dataset_format() == "mmap"
        assert set_dataset_format("memory") == "mmap"

    def test_unknown_format_rejected(self):
        with pytest.raises(GeneratorParameterError, match="unknown dataset"):
            set_dataset_format("carrier-pigeon")
        assert get_dataset_format() == "memory"


class TestBuildParity:
    def test_same_arrays_and_provenance(self, store, mmap_format):
        mm = build_dataset("S8-Std", **KW)
        set_dataset_format("memory")
        clear_dataset_cache()
        set_artifact_store(None)  # keep the memory build store-free
        mem = build_dataset("S8-Std", **KW)
        assert np.array_equal(mm.graph.indptr, mem.graph.indptr)
        assert np.array_equal(mm.graph.indices, mem.graph.indices)
        assert mm.graph.num_edges == mem.graph.num_edges
        assert mm.result.counter.trials == mem.result.counter.trials
        assert mm.result.counter.edges == mem.result.counter.edges

    def test_mmap_graph_is_zero_copy_read_only(self, store, mmap_format):
        graph = build_dataset("S8-Std", **KW).graph
        assert _mmap_backed(graph.indptr)
        assert _mmap_backed(graph.indices)
        assert not graph.indices.flags.writeable

    def test_csr_file_reused_not_regenerated(self, store, mmap_format):
        build_dataset("S8-Std", **KW)
        csr_files = list(store.root.rglob("*.csr"))
        assert len(csr_files) == 1
        mtime = csr_files[0].stat().st_mtime_ns
        clear_dataset_cache()
        build_dataset("S8-Std", **KW)
        assert csr_files[0].stat().st_mtime_ns == mtime

    def test_mmap_mode_never_pickles_datasets(self, store, mmap_format):
        build_dataset("S8-Std", **KW)
        assert list(store.root.rglob("*.pkl")) == []

    def test_fallback_scratch_without_store(self, mmap_format):
        # No persistence layer installed: mmap mode still works through
        # the per-process scratch directory.
        set_artifact_store(None)
        clear_dataset_cache()
        mm = build_dataset("S8-Std", **KW)
        assert _mmap_backed(mm.graph.indices)

    def test_format_is_part_of_cache_key(self, store, mmap_format):
        mm = build_dataset("S8-Std", **KW)
        set_dataset_format("memory")
        mem = build_dataset("S8-Std", **KW)
        assert mm is not mem
        assert not _mmap_backed(mem.graph.indices)


class TestCsrPathScheme:
    def test_layout_under_dataset_csr_kind(self, store):
        payload = ("S8-Std", 8000, 6, 7)
        path = store.dataset_csr_path(payload)
        assert path.suffix == ".csr"
        assert path.parent.parent.name == "dataset-csr"
        assert path.parent.name == path.stem[:2]

    def test_stable_and_payload_addressed(self, store):
        a = store.dataset_csr_path(("S8-Std", 8000, 6, 7))
        b = store.dataset_csr_path(("S8-Std", 8000, 6, 7))
        c = store.dataset_csr_path(("S8-Std", 8000, 6, 8))
        assert a == b
        assert a != c


class TestCaseParity:
    SPECS = [
        CaseSpec.make(p, a, "S8-Std", scale_divisor=8000)
        for p in ("Flash", "Grape")
        for a in ("pr", "wcc")
    ]

    @staticmethod
    def _identical(a, b) -> bool:
        if (a.platform, a.algorithm, a.dataset, a.status, a.red_bar) != (
                b.platform, b.algorithm, b.dataset, b.status, b.red_bar):
            return False
        if (a.result is None) != (b.result is None):
            return False
        if a.result is None:
            return True
        return (
            np.array_equal(np.asarray(a.result.values),
                           np.asarray(b.result.values))
            and a.result.metrics == b.result.metrics
        )

    def test_sequential_mmap_matches_memory(self, store, mmap_format):
        mm = run_cases(self.SPECS, jobs=1)
        set_dataset_format("memory")
        clear_case_cache()
        clear_dataset_cache()
        set_artifact_store(None)
        mem = run_cases(self.SPECS, jobs=1)
        assert all(self._identical(x, y) for x, y in zip(mm, mem))

    def test_pooled_mmap_matches_sequential_memory(self, store, mmap_format):
        pooled = run_cases(self.SPECS, jobs=2)
        set_dataset_format("memory")
        clear_case_cache()
        clear_dataset_cache()
        set_artifact_store(None)
        mem = run_cases(self.SPECS, jobs=1)
        assert all(self._identical(x, y) for x, y in zip(pooled, mem))


class TestCorruptEntryWarning:
    def test_corrupt_entry_warns_and_misses(self, store, capsys):
        store.put("dataset", ("x",), {"ok": True})
        entry = next(store.root.rglob("*.pkl"))
        entry.write_bytes(b"\x80\x04 definitely not a pickle")
        assert store.get("dataset", ("x",)) is None
        err = capsys.readouterr().err
        assert "corrupt store entry" in err
        assert str(entry) in err
        assert "kind=dataset" in err
        assert store.misses == 1

    def test_plain_miss_stays_silent(self, store, capsys):
        assert store.get("dataset", ("never-stored",)) is None
        assert capsys.readouterr().err == ""

    def test_corrupt_entry_overwritten_by_next_put(self, store, capsys):
        store.put("case", ("y",), [1, 2])
        entry = next(store.root.rglob("*.pkl"))
        entry.write_bytes(b"torn")
        assert store.get("case", ("y",)) is None
        store.put("case", ("y",), [1, 2])
        assert store.get("case", ("y",)) == [1, 2]
        capsys.readouterr()


class TestCliKnob:
    def test_dataset_format_flag_accepted(self, capsys, tmp_path, monkeypatch):
        from repro.bench.cli import main

        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        assert main(["table2", "--dataset-format", "mmap"]) == 0
        # Teardown restores the process default.
        assert get_dataset_format() == "memory"

    def test_bad_format_rejected(self):
        from repro.bench.cli import main

        with pytest.raises(SystemExit):
            main(["table2", "--dataset-format", "floppy"])
