"""Unit tests for the Fig. 14 selection-guide aggregation."""

import pytest

from repro.bench.selection import FIG14_METRICS, SelectionGuide, _normalize


def _uniform(value: float) -> dict[str, float]:
    return {metric: value for metric in FIG14_METRICS}


class TestNormalize:
    def test_scales_to_unit_max(self):
        raw = {"A": _uniform(10.0), "B": _uniform(5.0)}
        normalized = _normalize(raw)
        assert normalized["A"]["stress"] == pytest.approx(1.0)
        assert normalized["B"]["stress"] == pytest.approx(0.5)

    def test_missing_metric_becomes_zero(self):
        raw = {"A": _uniform(1.0), "B": {}}
        normalized = _normalize(raw)
        assert normalized["B"]["throughput"] == 0.0

    def test_all_zero_metric_stays_zero(self):
        raw = {"A": _uniform(0.0)}
        assert _normalize(raw)["A"]["compliance"] == 0.0


class TestArea:
    def test_full_circle_is_one(self):
        guide = SelectionGuide(metrics={"A": _uniform(1.0)}, ranking=["A"])
        assert guide.area("A") == pytest.approx(1.0)

    def test_zero_axis_hurts_superlinearly(self):
        """A zeroed axis removes two adjacent-product terms — worse than
        a proportional mean reduction."""
        full = SelectionGuide(metrics={"A": _uniform(1.0)}, ranking=["A"])
        dented = _uniform(1.0)
        dented["machine_speedup"] = 0.0
        guide = SelectionGuide(metrics={"A": dented}, ranking=["A"])
        mean_reduction = 7.0 / 8.0
        assert guide.area("A") < full.area("A") * mean_reduction

    def test_adjacent_zeros_cheaper_than_spread_zeros(self):
        adjacent = _uniform(1.0)
        adjacent["machine_speedup"] = 0.0
        adjacent["stress"] = 0.0  # adjacent to machine_speedup
        spread = _uniform(1.0)
        spread["machine_speedup"] = 0.0
        spread["compliance"] = 0.0  # far from machine_speedup
        g_adj = SelectionGuide(metrics={"A": adjacent}, ranking=["A"])
        g_spr = SelectionGuide(metrics={"A": spread}, ranking=["A"])
        assert g_adj.area("A") > g_spr.area("A")
