"""ExecutionProfile tests: TOML loading, env layering, CLI precedence."""

import pytest

from repro.bench.execprofile import (
    ExecutionProfile,
    load_profile,
    resolve_profile,
)
from repro.errors import ExecutionProfileError


def _write(tmp_path, text, name="profile.toml"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestLoadProfile:
    def test_flat_keys(self, tmp_path):
        path = _write(tmp_path, 'jobs = 4\ncache-dir = "/tmp/cache"\n')
        profile = load_profile(path)
        assert (profile.jobs, profile.cache_dir) == (4, "/tmp/cache")

    def test_execution_table(self, tmp_path):
        path = _write(
            tmp_path,
            '[execution]\njobs = 2\ndataset_format = "mmap"\n'
            "no-cache = true\n",
        )
        profile = load_profile(path)
        assert (profile.jobs, profile.dataset_format, profile.no_cache) == \
            (2, "mmap", True)

    def test_unknown_key_rejected(self, tmp_path):
        path = _write(tmp_path, "jbos = 4\n")
        with pytest.raises(ExecutionProfileError, match="jbos"):
            load_profile(path)

    def test_stray_toplevel_table_rejected(self, tmp_path):
        path = _write(tmp_path, "[execution]\njobs = 2\n[other]\nx = 1\n")
        with pytest.raises(ExecutionProfileError, match="other"):
            load_profile(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ExecutionProfileError, match="not found"):
            load_profile(tmp_path / "absent.toml")

    def test_invalid_toml_rejected(self, tmp_path):
        path = _write(tmp_path, "jobs = = 4\n")
        with pytest.raises(ExecutionProfileError, match="invalid TOML"):
            load_profile(path)

    def test_bad_type_rejected(self, tmp_path):
        path = _write(tmp_path, 'jobs = "four"\n')
        with pytest.raises(ExecutionProfileError, match="integer"):
            load_profile(path)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"jobs": 0},
        {"intra_jobs": 0},
        {"dataset_cache_size": -1},
        {"dataset_format": "floppy"},
        {"dynamic_batches": 0},
        {"dynamic_batch_edges": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ExecutionProfileError):
            ExecutionProfile(**kwargs)

    def test_defaults_are_the_historical_cli_defaults(self):
        profile = ExecutionProfile()
        assert profile.jobs == 1
        assert profile.intra_jobs == 1
        assert profile.cache_dir is None
        assert profile.no_cache is False
        assert profile.dataset_format == "memory"
        assert profile.trace is None
        assert profile.dynamic_batches == 8
        assert profile.dynamic_batch_edges == 50

    def test_dynamic_knobs_resolve_from_env(self):
        profile = resolve_profile(env={
            "REPRO_DYNAMIC_BATCHES": "3",
            "REPRO_DYNAMIC_BATCH_EDGES": "25",
        })
        assert profile.dynamic_batches == 3
        assert profile.dynamic_batch_edges == 25


class TestPrecedence:
    def test_cli_beats_env_beats_profile_beats_defaults(self, tmp_path):
        path = _write(
            tmp_path,
            'jobs = 2\nintra-jobs = 3\ndataset-format = "mmap"\n',
        )
        profile = resolve_profile(
            {"jobs": 8},
            profile_path=path,
            env={"REPRO_JOBS": "4", "REPRO_INTRA_JOBS": "5"},
        )
        assert profile.jobs == 8            # CLI wins
        assert profile.intra_jobs == 5      # env beats profile
        assert profile.dataset_format == "mmap"  # profile beats default
        assert profile.cache_dir is None    # default survives

    def test_absent_cli_flags_do_not_mask(self, tmp_path):
        path = _write(tmp_path, "jobs = 6\n")
        profile = resolve_profile(
            {"jobs": None, "no_cache": False}, profile_path=path, env={}
        )
        assert profile.jobs == 6
        assert profile.no_cache is False

    def test_env_bool_coercion(self):
        profile = resolve_profile({}, env={"REPRO_NO_CACHE": "true"})
        assert profile.no_cache is True

    def test_bad_env_value_rejected(self):
        with pytest.raises(ExecutionProfileError, match="REPRO_JOBS"):
            resolve_profile({}, env={"REPRO_JOBS": "many"})

    def test_unknown_cli_knob_rejected(self):
        with pytest.raises(ExecutionProfileError):
            resolve_profile({"warp_speed": 9}, env={})

    def test_no_sources_yields_defaults(self):
        assert resolve_profile({}, env={}) == ExecutionProfile()


class TestCliIntegration:
    def test_profile_flag_drives_harness(self, tmp_path, capsys, monkeypatch):
        from repro.bench.cli import main

        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "out"))
        cache = tmp_path / "cache"
        path = _write(tmp_path, f'cache-dir = "{cache}"\n')
        assert main(["table2", "--profile", str(path)]) == 0
        assert cache.is_dir()
        assert "cache: dir=" in capsys.readouterr().err

    def test_cli_overrides_profile(self, tmp_path, capsys, monkeypatch):
        from repro.bench.cli import main

        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "out"))
        profile_cache = tmp_path / "from-profile"
        cli_cache = tmp_path / "from-cli"
        path = _write(tmp_path, f'cache-dir = "{profile_cache}"\n')
        assert main([
            "table2", "--profile", str(path), "--cache-dir", str(cli_cache),
        ]) == 0
        assert cli_cache.is_dir()
        assert not profile_cache.exists()

    def test_bad_profile_is_a_clean_cli_error(self, tmp_path, monkeypatch):
        from repro.bench.cli import main

        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "out"))
        path = _write(tmp_path, "warp = 9\n")
        with pytest.raises(SystemExit, match="warp"):
            main(["table2", "--profile", str(path)])
