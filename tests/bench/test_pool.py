"""Pool executor determinism: parallelism may only change wall-clock.

The contract of :func:`repro.bench.pool.run_cases` is that for any
``jobs`` value the outcome list is bit-identical to sequential
execution — same statuses, values, traces, priced seconds, and metrics,
in submission order — including cases carrying fault schedules, whose
crash/checkpoint events must survive the process boundary intact.
"""

import numpy as np
import pytest

from repro import obs
from repro.bench import CaseSpec, clear_case_cache
from repro.bench.pool import run_cases, run_grid
from repro.bench.pool import get_default_jobs, set_default_jobs
from repro.errors import ClusterConfigError
from repro.faults import FaultSchedule, MachineCrash
from repro.cluster import scale_out


def _assert_outcomes_identical(a, b):
    assert (a.platform, a.algorithm, a.dataset, a.status, a.detail,
            a.red_bar, a.attempts, a.retry_backoff_seconds) == (
        b.platform, b.algorithm, b.dataset, b.status, b.detail,
        b.red_bar, b.attempts, b.retry_backoff_seconds)
    if a.result is None:
        assert b.result is None
        return
    ra, rb = a.result, b.result
    assert np.array_equal(np.asarray(ra.values), np.asarray(rb.values))
    assert ra.priced == rb.priced
    assert ra.metrics == rb.metrics
    assert ra.cluster == rb.cluster
    assert ra.trace.supersteps == rb.trace.supersteps
    for sa, sb in zip(ra.trace.steps, rb.trace.steps):
        assert np.array_equal(sa.ops, sb.ops)
        assert np.array_equal(sa.msg_count, sb.msg_count)
        assert np.array_equal(sa.msg_bytes, sb.msg_bytes)
    assert ra.timeline == rb.timeline


def _grid_specs():
    """A small mixed grid: ok, unsupported, red-bar, and faulted cases."""
    schedule = FaultSchedule(crashes=(MachineCrash(superstep=2, machine=1),))
    return [
        CaseSpec.make("Ligra", "pr", "S8-Std"),
        CaseSpec.make("Grape", "tc", "S8-Std"),
        CaseSpec.make("G-thinker", "pr", "S8-Std"),   # unsupported
        CaseSpec.make("Pregel+", "tc", "S8-Std"),     # red-bar promotion
        CaseSpec.make("Pregel+", "pr", "S8-Std", cluster=scale_out(4),
                      apply_red_bar=False, fault_schedule=schedule,
                      checkpoint_interval=2),          # faulted
    ]


class TestPoolDeterminism:
    def test_jobs1_vs_jobs4_identical_outcomes(self):
        specs = _grid_specs()
        clear_case_cache()
        sequential = run_cases(specs, jobs=1)
        clear_case_cache()
        parallel = run_cases(specs, jobs=4)
        assert len(sequential) == len(parallel) == len(specs)
        for a, b in zip(sequential, parallel):
            _assert_outcomes_identical(a, b)
        # The faulted case's events crossed the process boundary intact.
        faulted = parallel[-1]
        assert faulted.result.timeline is not None
        assert faulted.result.timeline.crashes

    def test_duplicate_specs_dispatch_once_and_fan_back(self):
        spec = CaseSpec.make("Ligra", "pr", "S8-Std")
        clear_case_cache()
        with obs.tracing() as tracer:
            outcomes = run_cases([spec, spec, spec], jobs=2)
        assert tracer.counters.snapshot().get("pool_tasks") == 1.0
        assert outcomes[0] is outcomes[1] is outcomes[2]

    def test_duplicate_faulted_specs_dedupe_to_one_execution(self):
        """Fault schedules are part of the case key: two identical
        faulted specs collapse into one dispatch, and both callers see
        the same faulted outcome (crash events included)."""
        schedule = FaultSchedule(crashes=(MachineCrash(superstep=2,
                                                       machine=1),))
        spec = CaseSpec.make(
            "Pregel+", "pr", "S8-Std", cluster=scale_out(4),
            apply_red_bar=False, fault_schedule=schedule,
            checkpoint_interval=2,
        )
        twin = CaseSpec.make(
            "Pregel+", "pr", "S8-Std", cluster=scale_out(4),
            apply_red_bar=False, fault_schedule=schedule,
            checkpoint_interval=2,
        )
        clear_case_cache()
        with obs.tracing() as tracer:
            outcomes = run_cases([spec, twin], jobs=2)
        assert tracer.counters.snapshot().get("pool_tasks") == 1.0
        assert outcomes[0] is outcomes[1]
        assert outcomes[0].result.timeline is not None
        assert outcomes[0].result.timeline.crashes

    def test_parallel_outcomes_seed_the_parent_memo(self):
        spec = CaseSpec.make("Ligra", "pr", "S8-Std")
        clear_case_cache()
        (pooled,) = run_cases([spec, CaseSpec.make("Grape", "pr", "S8-Std")],
                              jobs=2)[:1]
        assert spec.run() is pooled  # memo hit, no re-execution

    def test_run_grid_matches_explicit_spec_order(self):
        clear_case_cache()
        grid = run_grid(("Ligra", "Grape"), ("pr",), ("S8-Std",), jobs=1)
        assert [o.platform for o in grid] == ["Ligra", "Grape"]

    def test_worker_spans_and_counters_merge_into_parent(self):
        specs = _grid_specs()[:2]
        clear_case_cache()
        with obs.tracing() as tracer:
            run_cases(specs, jobs=2)
        names = [s.name for s in tracer.spans]
        assert "pool" in names
        assert any(n.startswith("pool-case/") for n in names)
        assert tracer.counters.snapshot().get("cases_run") == 2.0

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ClusterConfigError):
            run_cases([], jobs=0)
        with pytest.raises(ClusterConfigError):
            set_default_jobs(0)

    def test_default_jobs_round_trip(self):
        previous = set_default_jobs(3)
        try:
            assert get_default_jobs() == 3
        finally:
            set_default_jobs(previous)
        assert get_default_jobs() == previous
