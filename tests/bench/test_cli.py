"""Tests for the repro-bench CLI."""

import pytest

from repro.bench.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "fig10" in out


def test_table2(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "PR" in out
    assert (tmp_path / "table02_popularity.txt").exists()


def test_table3(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["table3"]) == 0
    assert "Pattern Matching" in capsys.readouterr().out


def test_fig9(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["fig9"]) == 0
    assert "trials" in capsys.readouterr().out.lower()


def test_stress(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["stress"]) == 0
    out = capsys.readouterr().out
    assert "GraphX" in out
    assert "oom" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_ablations_command(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["ablations"]) == 0
    assert (tmp_path / "ablations.txt").exists()


def test_dynamic_command(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["dynamic", "--dynamic-batches", "2"]) == 0
    out = capsys.readouterr().out
    assert "IncEval" in out
    assert "Bit-identical" in out
    assert (tmp_path / "dynamic_workload.txt").exists()


def test_cache_dir_prints_stats_line(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "out"))
    assert main(["table2", "--cache-dir", str(tmp_path / "cache")]) == 0
    err = capsys.readouterr().err
    assert "cache: dir=" in err
    assert "hits=" in err and "misses=" in err


def test_no_cache_suppresses_stats_line(capsys, tmp_path, monkeypatch):
    """--no-cache must not print an (all-zero) stats line — regression:
    it did, even with no store configured — and must drop any ambient
    store installed by embedding code for the duration of the run."""
    from repro.bench.store import (
        ArtifactStore,
        get_artifact_store,
        set_artifact_store,
    )

    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "out"))
    ambient = ArtifactStore(tmp_path / "ambient")
    set_artifact_store(ambient)
    try:
        assert main(["table2", "--no-cache"]) == 0
        assert get_artifact_store() is None
        assert "cache:" not in capsys.readouterr().err
    finally:
        set_artifact_store(None)


def test_default_run_has_no_cache_line(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["table2"]) == 0
    assert "cache:" not in capsys.readouterr().err
