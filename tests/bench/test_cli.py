"""Tests for the repro-bench CLI."""

import pytest

from repro.bench.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "fig10" in out


def test_table2(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "PR" in out
    assert (tmp_path / "table02_popularity.txt").exists()


def test_table3(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["table3"]) == 0
    assert "Pattern Matching" in capsys.readouterr().out


def test_fig9(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["fig9"]) == 0
    assert "trials" in capsys.readouterr().out.lower()


def test_stress(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["stress"]) == 0
    out = capsys.readouterr().out
    assert "GraphX" in out
    assert "oom" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_ablations_command(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["ablations"]) == 0
    assert (tmp_path / "ablations.txt").exists()


def test_dynamic_command(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
    assert main(["dynamic"]) == 0
    out = capsys.readouterr().out
    assert "Incremental" in out
