"""Tests for the dynamic-workload experiment library (bench.dynamic_exp)."""

import pytest

from repro.bench.dynamic_exp import (
    PR_PARITY_ATOL,
    crash_replay_case,
    run_dynamic_case,
)
from repro.errors import BenchmarkError

#: Small-but-real configuration: a bulk-loaded 400-vertex stream with
#: three incremental windows keeps each test under a second.
SMALL = dict(num_vertices=400, batch_edges=40, num_batches=3)


class TestRunDynamicCase:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(BenchmarkError):
            run_dynamic_case("tc", **SMALL)

    def test_wcc_report_shape(self):
        report = run_dynamic_case("wcc", **SMALL)
        assert len(report.windows) == 4
        assert report.windows[0].mode == "peval"
        assert all(w.mode == "inceval" for w in report.windows[1:])
        assert all(w.parity == "exact" for w in report.windows)
        assert report.speedup > 1.0
        assert report.edges_per_second > 0
        assert len(report.fingerprint) == 64

    def test_pr_parity_certified(self):
        report = run_dynamic_case("pr", **SMALL)
        assert all(w.parity == "certified" for w in report.windows)
        assert report.max_abs_err <= PR_PARITY_ATOL

    def test_incremental_beats_recompute_every_window(self):
        report = run_dynamic_case("sssp", **SMALL)
        for w in report.windows[1:]:
            assert w.incremental_seconds < w.recompute_seconds, w.window

    def test_platform_cases_route_through_run_cases(self):
        report = run_dynamic_case("wcc", platform_cases=True, **SMALL)
        assert sorted(report.platform_case_seconds) == [0, 1, 2, 3]
        assert all(s > 0 for s in report.platform_case_seconds.values())


class TestCrashReplay:
    def test_bit_identical_recovery(self):
        result = crash_replay_case("wcc", crash_window=2, **SMALL)
        assert result["bit_identical"] is True
        assert result["replayed_windows"] >= 1
        assert result["recovery_seconds"] > 0
        assert len(result["fingerprint"]) == 64

    @pytest.mark.parametrize("window", [0, 4, -1])
    def test_crash_window_bounds_checked(self, window):
        with pytest.raises(BenchmarkError):
            crash_replay_case("wcc", crash_window=window, **SMALL)
