"""Unit tests for the persistent content-addressed artifact store.

Covers the key scheme (stability, order-insensitivity, version
invalidation), the on-disk behaviour (atomic writes, corrupt entries
as misses), the cold-vs-warm equality contract, and the dataset-cache
knobs that ride on the same layer.
"""

import hashlib
import pickle

import numpy as np
import pytest

from repro import obs
from repro.bench import (
    ArtifactStore,
    CaseSpec,
    clear_case_cache,
    get_artifact_store,
    set_artifact_store,
)
from repro.bench.store import STORE_VERSION, canonical_key
from repro.cluster import single_machine
from repro.datagen import (
    build_dataset,
    clear_dataset_cache,
    dataset_cache_info,
    set_dataset_cache_size,
)
from repro.errors import GeneratorParameterError


@pytest.fixture
def store(tmp_path):
    """A store installed globally for the test, then uninstalled."""
    store = ArtifactStore(tmp_path / "cache")
    previous = set_artifact_store(store)
    clear_case_cache()
    clear_dataset_cache()
    try:
        yield store
    finally:
        set_artifact_store(previous)
        clear_case_cache()
        clear_dataset_cache()


class TestCanonicalKey:
    def test_documented_rendering(self):
        # Pins the key scheme documented in docs/benchmarking.md: the
        # digest is SHA-256 over "<version>|<kind>|<canonical payload>".
        text = f"{STORE_VERSION}|dataset|m:(s:'a':1)"
        expected = hashlib.sha256(text.encode("utf-8")).hexdigest()
        assert canonical_key("dataset", {"a": 1}) == expected

    def test_dict_order_insensitive(self):
        assert canonical_key("k", {"a": 1, "b": 2}) == \
            canonical_key("k", {"b": 2, "a": 1})

    def test_type_tags_prevent_collisions(self):
        assert canonical_key("k", 1) != canonical_key("k", 1.0)
        assert canonical_key("k", "1") != canonical_key("k", 1)
        assert canonical_key("k", (1,)) != canonical_key("k", 1)

    def test_kind_partitions_address_space(self):
        assert canonical_key("dataset", {"a": 1}) != \
            canonical_key("case", {"a": 1})

    def test_dataclass_and_array_payloads(self):
        spec_a = CaseSpec.make("Ligra", "pr", "S8-Std")
        spec_b = CaseSpec.make("Ligra", "pr", "S8-Std")
        assert canonical_key("case", spec_a) == canonical_key("case", spec_b)
        arr = np.arange(5)
        assert canonical_key("k", arr) == canonical_key("k", np.arange(5))
        assert canonical_key("k", arr) != canonical_key("k", np.arange(6))

    def test_cluster_specs_fork_the_key(self):
        a = CaseSpec.make("Ligra", "pr", "S8-Std", cluster=single_machine(8))
        b = CaseSpec.make("Ligra", "pr", "S8-Std", cluster=single_machine(16))
        assert canonical_key("case", a) != canonical_key("case", b)

    def test_uncanonicalizable_type_raises(self):
        with pytest.raises(TypeError):
            canonical_key("k", object())

    def test_version_tag_invalidates(self, monkeypatch, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", {"a": 1}, "old-artifact")
        assert store.get("k", {"a": 1}) == "old-artifact"
        monkeypatch.setattr("repro.bench.store.STORE_VERSION", "next-v2")
        assert store.get("k", {"a": 1}) is None  # re-addressed, not found


class TestArtifactStoreDisk:
    def test_roundtrip_and_tallies(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("k", {"x": 1}) is None
        store.put("k", {"x": 1}, {"data": np.arange(4)})
        back = store.get("k", {"x": 1})
        assert np.array_equal(back["data"], np.arange(4))
        assert store.stats() == {"hits": 1, "misses": 1, "puts": 1}

    def test_atomic_put_leaves_no_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(5):
            store.put("k", {"i": i}, list(range(i)))
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_corrupt_entry_is_a_miss_then_overwritten(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", {"x": 1}, "artifact")
        (entry,) = list(tmp_path.rglob("*.pkl"))
        entry.write_bytes(b"\x80garbage")
        assert store.get("k", {"x": 1}) is None
        store.put("k", {"x": 1}, "rebuilt")
        assert store.get("k", {"x": 1}) == "rebuilt"

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", {"x": 1}, list(range(100)))
        (entry,) = list(tmp_path.rglob("*.pkl"))
        entry.write_bytes(entry.read_bytes()[:10])
        assert store.get("k", {"x": 1}) is None

    def test_layout_shards_by_digest_prefix(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("dataset", {"x": 1}, "a")
        key = canonical_key("dataset", {"x": 1})
        assert (tmp_path / "dataset" / key[:2] / f"{key}.pkl").exists()

    def test_counters_mirror_into_tracer(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with obs.tracing() as tracer:
            store.get("k", {"x": 1})
            store.put("k", {"x": 1}, "a")
            store.get("k", {"x": 1})
        snap = tracer.counters.snapshot()
        assert snap.get("store_misses") == 1.0
        assert snap.get("store_puts") == 1.0
        assert snap.get("store_hits") == 1.0


class TestColdVsWarm:
    def _specs(self):
        return [
            CaseSpec.make("Ligra", "pr", "S8-Std"),
            CaseSpec.make("Grape", "tc", "S8-Std"),
        ]

    def test_warm_outcomes_equal_cold(self, store):
        cold = [spec.run() for spec in self._specs()]
        assert store.puts > 0
        clear_case_cache()  # force the next lookup through the disk layer
        warm = [spec.run() for spec in self._specs()]
        assert store.hits >= len(warm)
        for a, b in zip(cold, warm):
            assert a.status == b.status
            assert np.array_equal(np.asarray(a.result.values),
                                  np.asarray(b.result.values))
            assert a.result.priced == b.result.priced
            assert a.result.metrics == b.result.metrics
            assert a.result.trace.supersteps == b.result.trace.supersteps
            for sa, sb in zip(a.result.trace.steps, b.result.trace.steps):
                assert np.array_equal(sa.ops, sb.ops)
                assert np.array_equal(sa.msg_count, sb.msg_count)
                assert np.array_equal(sa.msg_bytes, sb.msg_bytes)

    def test_datasets_persist_through_store(self, store):
        build_dataset("S8-Std")
        assert store.puts > 0
        clear_dataset_cache()
        before = store.hits
        build_dataset("S8-Std")
        assert store.hits > before

    def test_global_install_round_trip(self, tmp_path):
        mine = ArtifactStore(tmp_path)
        previous = set_artifact_store(mine)
        try:
            assert get_artifact_store() is mine
        finally:
            set_artifact_store(previous)
        assert get_artifact_store() is previous


class TestDatasetCacheKnobs:
    def test_cache_size_round_trip(self):
        original = dataset_cache_info().maxsize
        try:
            set_dataset_cache_size(4)
            assert dataset_cache_info().maxsize == 4
        finally:
            set_dataset_cache_size(original)

    def test_invalid_cache_size_rejected(self):
        with pytest.raises(GeneratorParameterError):
            set_dataset_cache_size(0)

    def test_hit_miss_counters(self):
        clear_dataset_cache()
        with obs.tracing() as tracer:
            build_dataset("S8-Std")
            build_dataset("S8-Std")
        snap = tracer.counters.snapshot()
        assert snap.get("dataset_cache_misses") == 1.0
        assert snap.get("dataset_cache_hits") == 1.0
