"""Tests for the ablation experiments and the mini-Graph500 harness."""

import numpy as np
import pytest

from repro.bench.ablations import (
    density_factor_curve,
    diameter_control_curve,
    partition_ablation,
    vertex_subset_ablation,
)
from repro.bench.graph500 import (
    Graph500Run,
    run_graph500,
    validate_bfs_levels,
)
from repro.core import Graph, path_graph
from repro.errors import BenchmarkError


class TestAblations:
    def test_density_curve_monotone(self):
        rows = density_factor_curve(num_vertices=800,
                                    alphas=(1.0, 10.0, 100.0))
        edges = [r["edges"] for r in rows]
        assert edges == sorted(edges)
        assert edges[-1] > 5 * edges[0]

    def test_diameter_curve_monotone(self):
        rows = diameter_control_curve(num_vertices=800,
                                      group_counts=(1, 8, 16))
        diameters = [r["diameter"] for r in rows]
        assert diameters == sorted(diameters)

    def test_partition_ablation_locality(self):
        cuts = partition_ablation(dataset="S8-Std")
        assert cuts["range_cut_fraction"] < cuts["hash_cut_fraction"]
        assert 0 < cuts["range_cut_fraction"] < 1

    def test_vertex_subset_saves_work(self):
        results = vertex_subset_ablation()
        assert results["with_subset"]["compute_ops"] < \
            results["without_subset"]["compute_ops"]
        # same answer either way: supersteps identical
        assert results["with_subset"]["supersteps"] == \
            results["without_subset"]["supersteps"]


class TestGraph500:
    def test_validation_accepts_correct_levels(self):
        g = path_graph(6)
        levels = np.array([0, 1, 2, 3, 4, 5])
        validate_bfs_levels(g, levels, 0)

    def test_validation_rejects_wrong_root(self):
        g = path_graph(4)
        with pytest.raises(BenchmarkError):
            validate_bfs_levels(g, np.array([1, 2, 3, 4]), 0)

    def test_validation_rejects_level_jump(self):
        g = path_graph(4)
        with pytest.raises(BenchmarkError):
            validate_bfs_levels(g, np.array([0, 2, 3, 4]), 0)

    def test_validation_rejects_reachability_mismatch(self):
        g = Graph.from_edges([0, 2], [1, 3], num_vertices=4)
        # claims vertex 2 reached even though it is another component
        with pytest.raises(BenchmarkError):
            validate_bfs_levels(g, np.array([0, 1, 1, 2]), 0)

    def test_run_returns_scores(self):
        runs = run_graph500(scale=8, num_roots=3,
                            platforms=("Ligra", "Grape"))
        assert len(runs) == 2
        for run in runs:
            assert isinstance(run, Graph500Run)
            assert run.num_roots == 3
            assert run.harmonic_mean_teps > 0
            assert run.harmonic_mean_teps <= run.mean_teps + 1e-9

    def test_skips_platforms_without_bfs(self):
        runs = run_graph500(scale=7, num_roots=2,
                            platforms=("G-thinker", "Ligra"))
        assert [r.platform for r in runs] == ["Ligra"]

    def test_rejects_bad_roots(self):
        with pytest.raises(BenchmarkError):
            run_graph500(num_roots=0)
