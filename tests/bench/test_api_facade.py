"""Tests for the repro.api facade, the deprecation shims, and the
pool-fallback warning."""

import warnings

import pytest

import repro.api as api
import repro.bench
from repro.bench.runner import clear_case_cache
from repro.errors import SchemaError, ServiceError
from repro.service.schema import SubmitRequest, outcome_fingerprint


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_case_cache()
    yield
    clear_case_cache()


def _request(tenant="t", n=1):
    cases = tuple(
        api.case("Flash", "pr", "S8-Std", scale_divisor=20000)
        for _ in range(n)
    )
    return SubmitRequest(tenant=tenant, cases=cases)


class TestFacade:
    def test_run_sync_matches_direct_execution(self):
        direct = api.case(
            "Flash", "pr", "S8-Std", scale_divisor=20000
        ).to_spec().run()
        clear_case_cache()
        result = api.run_sync(_request())
        assert result.outcomes[0].status == "ok"
        assert outcome_fingerprint(result.outcomes[0]) == \
            outcome_fingerprint(direct)

    def test_submit_gather_preserves_handle_order(self):
        h1 = api.submit(_request("a"))
        h2 = api.submit(SubmitRequest(
            tenant="b",
            cases=(api.case("Grape", "wcc", "S8-Std", scale_divisor=20000),),
        ))
        results = api.gather([h2, h1])
        assert [r.job_id for r in results] == [h2.job_id, h1.job_id]
        assert results[0].tenant == "b"
        assert results[1].tenant == "a"

    def test_gather_none_collects_all_pending(self):
        h1 = api.submit(_request("a"))
        h2 = api.submit(_request("b"))
        results = api.gather()
        assert {r.job_id for r in results} == {h1.job_id, h2.job_id}

    def test_regather_serves_from_result_table(self):
        handle = api.submit(_request())
        first = api.gather([handle])[0]
        second = api.gather([handle])[0]
        assert first is second

    def test_identical_cases_across_jobs_share_execution(self):
        h1 = api.submit(_request("a"))
        h2 = api.submit(_request("b"))
        r1, r2 = api.gather([h1, h2])
        assert r1.fingerprints == r2.fingerprints

    def test_submit_rejects_non_request(self):
        with pytest.raises(SchemaError):
            api.submit({"tenant": "t"})

    def test_gather_unknown_handle_rejected(self):
        ghost = api.JobHandle(job_id="local-999999", request=_request())
        with pytest.raises(ServiceError):
            api.gather([ghost])

    def test_facade_does_not_touch_deprecated_entry_points(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.run_sync(_request())


class TestDeprecationShims:
    def test_run_case_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="repro.api.run_sync"):
            outcome = repro.bench.run_case(
                "Flash", "pr", "S8-Std", scale_divisor=20000
            )
        assert outcome.status == "ok"

    def test_run_cases_shim_warns_and_delegates(self):
        from repro.bench.runner import CaseSpec

        specs = [CaseSpec.make("Flash", "pr", "S8-Std", scale_divisor=20000)]
        with pytest.warns(DeprecationWarning, match="submit/gather"):
            outcomes = repro.bench.run_cases(specs, jobs=1)
        assert outcomes[0].status == "ok"

    def test_run_grid_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning):
            outcomes = repro.bench.run_grid(
                ["Flash"], ["pr"], ["S8-Std"], scale_divisor=20000
            )
        assert len(outcomes) == 1

    def test_submodule_entry_points_do_not_warn(self):
        from repro.bench.pool import run_cases
        from repro.bench.runner import CaseSpec, run_case

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_case("Flash", "pr", "S8-Std", scale_divisor=20000)
            run_cases(
                [CaseSpec.make("Flash", "pr", "S8-Std", scale_divisor=20000)],
                jobs=1,
            )


class TestPoolFallbackSurfaced:
    def test_nested_pool_counts_and_warns_once(self, monkeypatch, capsys):
        from repro import obs
        from repro.bench import pool
        from repro.bench.runner import CaseSpec
        from repro.platforms.parallel import config as pconfig

        # Pretend we are inside a pool worker; any real pool here would
        # be a bug, so poison the executor.
        monkeypatch.setattr(pconfig, "_POOL_WIDTH", 2)
        monkeypatch.setattr(
            pool, "ProcessPoolExecutor",
            lambda *a, **k: pytest.fail("nested pool was created"),
        )
        monkeypatch.setattr(pool, "_FALLBACK_WARNED", False)
        specs = [
            CaseSpec.make("Flash", "pr", "S8-Std", scale_divisor=20000),
            CaseSpec.make("Grape", "wcc", "S8-Std", scale_divisor=20000),
        ]
        with obs.tracing() as tracer:
            pool.run_cases(specs, jobs=4)
            pool.run_cases(specs, jobs=4)
        assert tracer.counters.snapshot().get(obs.POOL_FALLBACKS) == 2.0
        err = capsys.readouterr().err
        assert err.count("degraded to jobs=1") == 1
