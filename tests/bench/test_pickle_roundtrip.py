"""Pickle round-trips for everything that crosses the pool boundary.

The parallel executor ships :class:`CaseSpec` to workers and
:class:`CaseOutcome` (wrapping :class:`PlatformRunResult` and, for
faulted runs, a ``FaultTimeline``) back; the persistent store pickles
the same objects to disk.  A regression here silently breaks ``--jobs``
and ``--cache-dir``, so these tests pin the round-trip for each type —
including the numpy payloads a naive dataclass equality would miss.
"""

import pickle

import numpy as np

from repro.bench import CaseSpec, clear_case_cache
from repro.bench.runner import run_case
from repro.cluster import single_machine
from repro.faults import FaultSchedule, MachineCrash, StragglerWindow


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _assert_outcomes_identical(a, b):
    assert (a.platform, a.algorithm, a.dataset, a.status, a.detail,
            a.red_bar, a.attempts, a.retry_backoff_seconds) == (
        b.platform, b.algorithm, b.dataset, b.status, b.detail,
        b.red_bar, b.attempts, b.retry_backoff_seconds)
    if a.result is None:
        assert b.result is None
        return
    ra, rb = a.result, b.result
    assert np.array_equal(np.asarray(ra.values), np.asarray(rb.values))
    assert ra.priced == rb.priced
    assert ra.metrics == rb.metrics
    assert ra.cluster == rb.cluster
    assert ra.trace.supersteps == rb.trace.supersteps
    for sa, sb in zip(ra.trace.steps, rb.trace.steps):
        assert np.array_equal(sa.ops, sb.ops)
        assert np.array_equal(sa.msg_count, sb.msg_count)
        assert np.array_equal(sa.msg_bytes, sb.msg_bytes)
    assert ra.timeline == rb.timeline


class TestFaultSchedulePickle:
    def test_schedule_roundtrips_and_stays_hashable(self):
        schedule = FaultSchedule(
            crashes=(MachineCrash(superstep=3, machine=1),),
            stragglers=(StragglerWindow(machine=0, factor=2.0,
                                        start_superstep=1,
                                        end_superstep=4),),
            retransmit_rate=0.01,
            seed=7,
        )
        clone = _roundtrip(schedule)
        assert clone == schedule
        assert hash(clone) == hash(schedule)

    def test_crash_roundtrip(self):
        crash = MachineCrash(superstep=5, machine=2)
        assert _roundtrip(crash) == crash


class TestCaseSpecPickle:
    def test_spec_roundtrips_with_params_and_cluster(self):
        schedule = FaultSchedule(crashes=(MachineCrash(superstep=2, machine=0),))
        spec = CaseSpec.make(
            "Pregel+", "pr", "S8-Std", cluster=single_machine(8),
            apply_red_bar=False, fault_schedule=schedule,
            checkpoint_interval=2,
        )
        clone = _roundtrip(spec)
        assert clone == spec
        assert hash(clone) == hash(spec)


class TestCaseOutcomePickle:
    def test_ok_outcome_roundtrips_bit_identically(self):
        clear_case_cache()
        outcome = run_case("Ligra", "pr", "S8-Std")
        assert outcome.status == "ok"
        _assert_outcomes_identical(outcome, _roundtrip(outcome))

    def test_faulted_outcome_roundtrips_with_timeline(self):
        clear_case_cache()
        schedule = FaultSchedule(crashes=(MachineCrash(superstep=2, machine=1),))
        outcome = run_case(
            "Pregel+", "pr", "S8-Std", cluster=single_machine(8),
            apply_red_bar=False, fault_schedule=schedule,
            checkpoint_interval=2,
        )
        assert outcome.status == "ok"
        assert outcome.result.timeline is not None
        clone = _roundtrip(outcome)
        _assert_outcomes_identical(outcome, clone)
        assert clone.result.timeline.crashes == outcome.result.timeline.crashes

    def test_unsupported_outcome_roundtrips(self):
        clear_case_cache()
        outcome = run_case("G-thinker", "pr", "S8-Std")
        assert outcome.status == "unsupported"
        _assert_outcomes_identical(outcome, _roundtrip(outcome))
