"""The nested-pool guard and the intra_jobs option plumbing.

Intra-case sharding and the bench pool share one slot budget and a set
of process-role markers (:mod:`repro.platforms.parallel.config`).
These tests pin down the pieces the parity suites cannot see from the
outside: the fork-bomb guard in :func:`run_cases`, the worker
initializer's width marking, option parsing, and the process-wide
default that the CLI's ``--intra-jobs`` flag sets.
"""

import pytest

from repro.bench import CaseSpec, clear_case_cache
from repro.bench.pool import run_cases
from repro.bench.pool import _worker_init
from repro.errors import ClusterConfigError, PlatformError
from repro.platforms.common import parse_engine_options
from repro.platforms.parallel import (
    get_default_intra_jobs,
    set_default_intra_jobs,
)
from repro.platforms.parallel import config as parallel_config


class TestNestedPoolGuard:
    def test_pool_worker_runs_sequentially(self, monkeypatch):
        """Inside a pool worker, ``jobs>1`` degrades to the sequential
        loop instead of opening a second (nested) process pool."""
        monkeypatch.setattr(parallel_config, "_POOL_WIDTH", 4)

        def _no_pool(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("nested ProcessPoolExecutor opened")

        monkeypatch.setattr(
            "repro.bench.pool.ProcessPoolExecutor", _no_pool
        )
        clear_case_cache()
        specs = [CaseSpec.make("Ligra", "pr", "S8-Std"),
                 CaseSpec.make("Grape", "tc", "S8-Std")]
        outcomes = run_cases(specs, jobs=4)
        assert [o.status for o in outcomes] == ["ok", "ok"]

    def test_shard_worker_runs_sequentially(self, monkeypatch):
        monkeypatch.setattr(parallel_config, "_SHARD_WORKER", True)
        monkeypatch.setattr(
            "repro.bench.pool.ProcessPoolExecutor",
            lambda *a, **k: pytest.fail("nested pool in shard worker"),
        )
        clear_case_cache()
        outcomes = run_cases(
            [CaseSpec.make("Ligra", "pr", "S8-Std")], jobs=8
        )
        assert outcomes[0].status == "ok"

    def test_worker_init_marks_pool_width(self, monkeypatch):
        monkeypatch.setattr(parallel_config, "_POOL_WIDTH", 0)
        monkeypatch.setattr(parallel_config, "_SLOT_BUDGET", 8)
        _worker_init(None, None, "memory", 4)
        assert parallel_config.in_worker_process()
        assert parallel_config.worker_pool_width() == 4
        # The engine-side clamp sees the share immediately.
        assert parallel_config.effective_intra_jobs(8) == 2


class TestIntraJobsOption:
    def test_parse_default_is_process_global(self):
        assert parse_engine_options({}).intra_jobs == 1
        set_default_intra_jobs(3)
        try:
            assert parse_engine_options({}).intra_jobs == 3
            # Explicit params always beat the process default.
            assert parse_engine_options({"intra_jobs": 2}).intra_jobs == 2
        finally:
            set_default_intra_jobs(1)
        assert get_default_intra_jobs() == 1

    @pytest.mark.parametrize("bad", (0, -1, True, 1.5, "2"))
    def test_parse_rejects_non_positive_int(self, bad):
        with pytest.raises(PlatformError):
            parse_engine_options({"intra_jobs": bad})

    @pytest.mark.parametrize("bad", (0, -3, False, "4"))
    def test_setters_validate(self, bad):
        with pytest.raises(ClusterConfigError):
            set_default_intra_jobs(bad)
        with pytest.raises(ClusterConfigError):
            parallel_config.set_slot_budget(bad)
