"""Tests for the benchmark harness: runner, reporting, experiments."""

import numpy as np
import pytest

from repro.bench import (
    RED_BAR_CASES,
    clear_case_cache,
    render_series,
    render_table,
)
from repro.bench.runner import run_case
from repro.bench.genquality import (
    build_similarity_graphs,
    efficiency_sweep,
    similarity_table,
)
from repro.bench.performance import (
    SCALE_UP_EXCLUSIONS,
    scale_up_curves,
    speedup_table,
    stress_test,
)
from repro.bench.statics import (
    dataset_rows,
    platform_rows,
    popularity_rows,
    workload_rows,
)
from repro.cluster import single_machine


class TestRunner:
    def test_ok_case(self):
        outcome = run_case("Ligra", "pr", "S8-Std")
        assert outcome.status == "ok"
        assert outcome.seconds > 0

    def test_unsupported_case(self):
        outcome = run_case("G-thinker", "pr", "S8-Std")
        assert outcome.status == "unsupported"
        assert outcome.seconds is None

    def test_red_bar_promotes_to_16_machines(self):
        outcome = run_case("GraphX", "kc", "S8-Std")
        assert outcome.red_bar
        assert outcome.result.cluster.machines == 16

    def test_red_bar_cases_match_paper(self):
        assert ("GraphX", "lpa") in RED_BAR_CASES
        assert ("GraphX", "cd") in RED_BAR_CASES
        assert ("GraphX", "kc") in RED_BAR_CASES
        assert ("Pregel+", "tc") in RED_BAR_CASES
        assert ("Pregel+", "kc") in RED_BAR_CASES
        assert len(RED_BAR_CASES) == 5

    def test_caching(self):
        a = run_case("Ligra", "pr", "S8-Std")
        b = run_case("Ligra", "pr", "S8-Std")
        assert a is b

    def test_cache_clear(self):
        a = run_case("Ligra", "pr", "S8-Std")
        clear_case_cache()
        b = run_case("Ligra", "pr", "S8-Std")
        assert a is not b

    def test_custom_cluster(self):
        outcome = run_case("Grape", "pr", "S8-Std",
                           cluster=single_machine(8))
        assert outcome.result.cluster.threads_per_machine == 8


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [30, 0.001]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1]
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_render_series(self):
        text = render_series("S", "x", [1, 2], {"y": [10.0, 20.0]})
        assert "x" in text
        assert "10" in text

    def test_emit_writes_file(self, tmp_path, capsys):
        from repro.bench.reporting import emit
        path = emit("test_artifact", "hello", out_dir=tmp_path)
        assert path.read_text() == "hello"
        assert "hello" in capsys.readouterr().out


class TestGenQuality:
    @pytest.fixture(scope="class")
    def graphs(self):
        return build_similarity_graphs(num_vertices=600, mean_degree=10.0)

    def test_graphs_comparable_size(self, graphs):
        sizes = [graphs.livejournal.num_edges, graphs.fft.num_edges,
                 graphs.ldbc.num_edges]
        assert max(sizes) < 3 * min(sizes)

    def test_fft_closer_than_ldbc(self, graphs):
        """Table 8's headline: FFT-DG's community statistics diverge
        less from the real graph than LDBC-DG's."""
        table = similarity_table(graphs)
        fft_avg = np.mean(list(table["FFT-DG"].values()))
        ldbc_avg = np.mean(list(table["LDBC-DG"].values()))
        assert fft_avg < ldbc_avg

    def test_efficiency_headline(self):
        """Fig. 9: FFT-DG ~1.5 trials/edge flat; LDBC-DG far more and
        slower per edge."""
        rows = efficiency_sweep(num_vertices=1200,
                                alphas=(1.0, 10.0, 100.0))
        for row in rows:
            assert row["fft_trials_per_edge"] < 1.6
            assert row["ldbc_trials_per_edge"] > 3.0
            assert row["fft_edges_per_s"] > row["ldbc_edges_per_s"]


class TestPerformanceExperiments:
    def test_scale_up_uses_repricing(self):
        curves = scale_up_curves(
            algorithms=("pr",), datasets=("S8-Std",),
            platforms=("Grape", "Ligra"),
        )
        assert len(curves) == 2
        for curve in curves:
            assert len(curve.xs) == 6
            assert curve.seconds[0] > curve.seconds[-1]
            assert curve.speedup > 10

    def test_scale_up_excludes_graphx_tc(self):
        assert ("GraphX", "tc") in SCALE_UP_EXCLUSIONS
        curves = scale_up_curves(
            algorithms=("tc",), datasets=("S8-Std",),
            platforms=("GraphX", "Grape"),
        )
        assert {c.platform for c in curves} == {"Grape"}

    def test_speedup_table_shape(self):
        curves = scale_up_curves(
            algorithms=("pr",), datasets=("S8-Std",),
            platforms=("Grape", "Ligra"),
        )
        table = speedup_table(curves)
        assert ("pr", "S8-Std") in table
        assert set(table[("pr", "S8-Std")]) == {"Grape", "Ligra"}

    def test_stress_test_headline(self):
        results = stress_test()
        assert results["GraphX"]["S10-Std"] == "oom"
        assert results["Ligra"]["S10-Std"] == "oom"
        assert results["Grape"]["S10-Std"] == "ok"
        assert results["G-thinker"]["S10-Std"] == "ok"  # via TC fallback


class TestStatics:
    def test_popularity_rows(self):
        rows = popularity_rows()
        assert len(rows) == 8
        assert rows[0][0] == "PR"

    def test_workload_rows_cover_ten_algorithms(self):
        assert len(workload_rows()) == 10

    def test_dataset_rows_without_measurement(self):
        rows = dataset_rows(measure=False)
        assert len(rows) == 8
        assert len(rows[0]) == 5

    def test_platform_rows(self):
        rows = platform_rows()
        assert len(rows) == 7
        assert ["Ligra", "C++", "vertex-centric"] in rows


class TestWeightedCases:
    def test_weighted_sssp_parity_on_catalog(self):
        import numpy as np
        from repro.algorithms.reference import dijkstra
        from repro.datagen import build_dataset, uniform_weights
        expected = dijkstra(
            uniform_weights(build_dataset("S8-Std").graph, seed=0), 0
        )
        for name in ("Flash", "Grape"):
            outcome = run_case(name, "sssp", "S8-Std", weighted=True)
            assert outcome.status == "ok"
            assert np.allclose(outcome.result.values, expected,
                               equal_nan=True)

    def test_weighted_and_unweighted_cached_separately(self):
        a = run_case("Grape", "sssp", "S8-Std", weighted=True)
        b = run_case("Grape", "sssp", "S8-Std", weighted=False)
        assert a is not b
