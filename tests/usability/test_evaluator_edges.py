"""Edge-case tests for the code evaluator's metric functions."""

import pytest

from repro.usability import CodeEvaluator, get_api_spec, reference_code


@pytest.fixture
def evaluator():
    return CodeEvaluator(get_api_spec("Ligra"))


def test_empty_code_scores_zero_readability(evaluator):
    scores = evaluator.evaluate("pr", "")
    assert scores.readability == 0.0
    assert scores.compliance < 50.0


def test_correctness_floor_is_zero(evaluator):
    code = "doFoo(); barFn(); bazAll(); quxMap(); " \
           "for (int v = 0; v < n; ++v) { /* generic per-vertex loop */ }"
    scores = evaluator.evaluate("pr", code)
    assert scores.correctness >= 0.0


def test_missing_loop_penalized(evaluator):
    reference = reference_code(get_api_spec("Ligra"), "pr")
    no_loop = reference.replace("while", "when")
    assert evaluator.evaluate("pr", no_loop).correctness < \
        evaluator.evaluate("pr", reference).correctness


def test_identifier_gibberish_hurts(evaluator):
    reference = reference_code(get_api_spec("Ligra"), "pr")
    renamed = reference.replace("frontier", "tmp1x").replace(
        "result", "tmp2x"
    )
    assert evaluator.evaluate("pr", renamed).readability < \
        evaluator.evaluate("pr", reference).readability


def test_extra_bloat_hurts_structure_score(evaluator):
    reference = reference_code(get_api_spec("Ligra"), "pr")
    bloated = reference + "\n" + "\n".join(
        f"int helper{i} = {i};" for i in range(40)
    )
    assert evaluator.evaluate("pr", bloated).readability < \
        evaluator.evaluate("pr", reference).readability


def test_scores_bounded(evaluator):
    for code in ("", "x", reference_code(get_api_spec("Ligra"), "tc")):
        scores = evaluator.evaluate("tc", code)
        for value in scores.as_dict().values():
            assert 0.0 <= value <= 100.0
