"""Tests for the multi-level usability evaluation framework."""

import numpy as np
import pytest

from repro.errors import UsabilityError
from repro.usability import (
    API_SPECS,
    CodeEvaluator,
    PromptLevel,
    ScoreWeights,
    TASK_DESCRIPTIONS,
    build_prompt,
    evaluate_usability,
    get_api_spec,
    instruction_tune,
    knowledge_fraction,
    reference_code,
    validate_against_humans,
)
from repro.usability.human import HUMAN_SCORES, PAPER_SPEARMAN


class TestApiSpecs:
    def test_seven_platforms(self):
        assert len(API_SPECS) == 7

    def test_lowest_level_apis_present(self):
        """Section 5.2: the evaluation uses the platforms' fundamental
        APIs, e.g. compute()/reducer() and gather/apply/scatter."""
        assert "compute" in get_api_spec("Pregel+").function_names()
        assert "reducer" in get_api_spec("Pregel+").function_names()
        pg = get_api_spec("PowerGraph").function_names()
        assert {"gather", "apply", "scatter"} <= set(pg)
        assert "vertexMap" in get_api_spec("Ligra").function_names()
        assert {"PEval", "IncEval"} <= set(get_api_spec("Grape").function_names())

    def test_anonymization_masks_names(self):
        spec = get_api_spec("PowerGraph").anonymized()
        assert spec.platform == "platform_x"
        assert all(f.name.startswith("api_fn_") for f in spec.functions)

    def test_difficulties_in_range(self):
        for spec in API_SPECS.values():
            assert 0.0 <= spec.expert_difficulty <= spec.novice_difficulty <= 1.0

    def test_unknown_platform_rejected(self):
        with pytest.raises(UsabilityError):
            get_api_spec("Neo4j")


class TestPrompts:
    def test_knowledge_fraction_monotone(self):
        fractions = [knowledge_fraction(level) for level in PromptLevel]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] == 1.0

    def test_junior_prompt_has_no_api_details(self):
        spec = get_api_spec("Flash")
        prompt = build_prompt(spec, "pr", PromptLevel.JUNIOR)
        assert "api_fn_0" not in prompt

    def test_intermediate_adds_api_names(self):
        spec = get_api_spec("Flash")
        prompt = build_prompt(spec, "pr", PromptLevel.INTERMEDIATE)
        assert "api_fn_0" in prompt

    def test_senior_adds_docs(self):
        spec = get_api_spec("Flash")
        prompt = build_prompt(spec, "pr", PromptLevel.SENIOR)
        assert "API reference" in prompt

    def test_expert_adds_pseudocode(self):
        spec = get_api_spec("Flash")
        prompt = build_prompt(spec, "pr", PromptLevel.EXPERT)
        assert "pseudo-code" in prompt

    def test_anonymization_applies_by_default(self):
        spec = get_api_spec("Ligra")
        prompt = build_prompt(spec, "tc", PromptLevel.SENIOR)
        assert "edgeMap" not in prompt

    def test_eight_tasks(self):
        assert len(TASK_DESCRIPTIONS) == 8

    def test_unknown_task_rejected(self):
        with pytest.raises(UsabilityError):
            build_prompt(get_api_spec("Flash"), "nope", PromptLevel.JUNIOR)


class TestReferenceCode:
    def test_uses_platform_apis(self):
        for platform, spec in API_SPECS.items():
            code = reference_code(spec, "pr")
            used = [n for n in spec.function_names() if n in code]
            assert len(used) >= 3, platform

    def test_contains_comments(self):
        code = reference_code(get_api_spec("Grape"), "wcc")
        assert code.count("//") >= 3

    def test_distinct_per_algorithm(self):
        spec = get_api_spec("Flash")
        assert reference_code(spec, "pr") != reference_code(spec, "tc")


class TestGenerator:
    def test_expert_errs_less_than_junior(self):
        generator = instruction_tune("Grape")
        assert generator.error_rate(PromptLevel.EXPERT) < \
            generator.error_rate(PromptLevel.JUNIOR)

    def test_deterministic(self):
        generator = instruction_tune("Flash")
        a = generator.generate("pr", PromptLevel.JUNIOR, seed=1)
        b = generator.generate("pr", PromptLevel.JUNIOR, seed=1)
        assert a.code == b.code

    def test_seed_varies_output(self):
        generator = instruction_tune("Grape")
        codes = {
            generator.generate("pr", PromptLevel.JUNIOR, seed=s).code
            for s in range(6)
        }
        assert len(codes) > 1

    def test_junior_produces_defects(self):
        generator = instruction_tune("Grape")
        total = sum(
            sum(generator.generate("pr", PromptLevel.JUNIOR, seed=s)
                .defects.values())
            for s in range(8)
        )
        assert total > 0

    def test_tuning_reduces_errors(self):
        untuned = instruction_tune("Flash", tuning_rounds=1)
        tuned = instruction_tune("Flash", tuning_rounds=5)
        assert tuned.error_rate(PromptLevel.JUNIOR) < \
            untuned.error_rate(PromptLevel.JUNIOR)


class TestEvaluator:
    def test_reference_code_scores_high(self):
        for platform, spec in API_SPECS.items():
            evaluator = CodeEvaluator(spec)
            scores = evaluator.evaluate("pr", reference_code(spec, "pr"))
            assert scores.compliance > 95, platform
            assert scores.correctness > 95, platform
            assert scores.readability > 95, platform

    def test_hallucination_penalized(self):
        spec = get_api_spec("PowerGraph")
        evaluator = CodeEvaluator(spec)
        code = reference_code(spec, "pr").replace("gather", "doGather")
        scores = evaluator.evaluate("pr", code)
        assert scores.correctness < 95
        assert scores.compliance < 95

    def test_generic_fallback_penalized(self):
        spec = get_api_spec("Ligra")
        evaluator = CodeEvaluator(spec)
        code = "for (int v = 0; v < n; ++v) { /* generic per-vertex loop */ }"
        scores = evaluator.evaluate("pr", code)
        assert scores.correctness < 70
        assert scores.compliance < 50

    def test_stripped_comments_hurt_readability(self):
        spec = get_api_spec("Flash")
        evaluator = CodeEvaluator(spec)
        reference = reference_code(spec, "pr")
        stripped = "\n".join(
            line for line in reference.split("\n")
            if not line.strip().startswith("//")
        )
        assert evaluator.evaluate("pr", stripped).readability < \
            evaluator.evaluate("pr", reference).readability


class TestScoring:
    def test_weights_are_35_35_30(self):
        w = ScoreWeights()
        assert (w.compliance, w.correctness, w.readability) == \
            (0.35, 0.35, 0.30)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(UsabilityError):
            ScoreWeights(compliance=0.5, correctness=0.5, readability=0.5)

    def test_scores_increase_with_level(self):
        for platform in ("GraphX", "Grape"):
            scores = [
                evaluate_usability(platform, level, repetitions=3).overall
                for level in PromptLevel
            ]
            assert scores == sorted(scores), platform

    def test_graphx_beats_grape_everywhere(self):
        """Fig. 13: GraphX is the most usable, Grape the least."""
        for level in (PromptLevel.JUNIOR, PromptLevel.SENIOR):
            gx = evaluate_usability("GraphX", level, repetitions=3).overall
            gr = evaluate_usability("Grape", level, repetitions=3).overall
            assert gx > gr

    def test_rejects_bad_repetitions(self):
        with pytest.raises(UsabilityError):
            evaluate_usability("Flash", PromptLevel.JUNIOR, repetitions=0)


class TestHumanValidation:
    def test_spearman_positive_and_strong(self):
        scores = {
            name: evaluate_usability(name, PromptLevel.INTERMEDIATE,
                                     repetitions=8).overall
            for name in API_SPECS
        }
        result = validate_against_humans(scores, PromptLevel.INTERMEDIATE)
        assert result.rho >= 0.6  # paper: 0.75; measured: 0.75

    def test_paper_llm_vs_human_reproduces_published_rho(self):
        """Sanity: our Spearman on the paper's own published numbers
        reproduces the paper's reported correlations.

        The paper breaks the Pregel+/Ligra human-score tie (both 72.0 at
        Senior) by listing order; we use standard average ranks, which
        shifts the Senior rho from 0.714 to 0.775 — hence the tolerance.
        """
        from repro.usability import PAPER_LLM_SCORES
        for level, expected in PAPER_SPEARMAN.items():
            result = validate_against_humans(PAPER_LLM_SCORES[level], level)
            assert result.rho == pytest.approx(expected, abs=0.07)

    def test_rankings_reported(self):
        result = validate_against_humans(
            HUMAN_SCORES[PromptLevel.SENIOR], PromptLevel.SENIOR
        )
        assert result.human_ranking[0] == "GraphX"
        assert result.human_ranking[-1] == "Grape"

    def test_rejects_junior_level(self):
        with pytest.raises(UsabilityError):
            validate_against_humans({}, PromptLevel.JUNIOR)

    def test_rejects_missing_platform(self):
        with pytest.raises(UsabilityError):
            validate_against_humans({"GraphX": 80.0},
                                    PromptLevel.INTERMEDIATE)


class TestPerAlgorithmBreakdown:
    def test_advanced_algorithms_score_lower(self):
        from repro.usability import usability_by_algorithm
        row = usability_by_algorithm("Flash", PromptLevel.INTERMEDIATE,
                                     repetitions=6)
        assert set(row) == set(TASK_DESCRIPTIONS)
        simple = (row["pr"] + row["wcc"]) / 2
        advanced = (row["bc"] + row["cd"] + row["kc"]) / 3
        assert advanced < simple

    def test_task_difficulty_mean_near_one(self):
        import numpy as np
        from repro.usability.generator import TASK_DIFFICULTY
        assert np.mean(list(TASK_DIFFICULTY.values())) == pytest.approx(
            1.0, abs=0.02
        )


class TestUsabilityTable:
    def test_full_grid_shape(self):
        from repro.usability import usability_table
        grid = usability_table(platforms=("GraphX", "Grape"),
                               levels=(PromptLevel.JUNIOR,
                                       PromptLevel.EXPERT),
                               repetitions=2)
        assert set(grid) == {PromptLevel.JUNIOR, PromptLevel.EXPERT}
        assert set(grid[PromptLevel.JUNIOR]) == {"GraphX", "Grape"}

    def test_custom_weights_change_overall(self):
        from repro.usability import ScoreWeights, evaluate_usability
        readable_heavy = ScoreWeights(compliance=0.1, correctness=0.1,
                                      readability=0.8)
        default = evaluate_usability("Flash", PromptLevel.SENIOR,
                                     repetitions=3)
        custom = evaluate_usability("Flash", PromptLevel.SENIOR,
                                    repetitions=3, weights=readable_heavy)
        # per-metric scores identical; aggregation differs
        assert custom.compliance == pytest.approx(default.compliance)
        assert custom.overall != pytest.approx(default.overall)

    def test_generated_prompt_carried_on_sample(self):
        from repro.usability import instruction_tune
        sample = instruction_tune("Ligra").generate(
            "tc", PromptLevel.SENIOR, seed=0
        )
        assert "API reference" in sample.prompt
        assert sample.platform == "Ligra"
        assert sample.level is PromptLevel.SENIOR
