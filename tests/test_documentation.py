"""Documentation coverage: every module and public item carries a
docstring (deliverable (e) of the reproduction, enforced mechanically)."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20, module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if item.__module__ != module_name:
                continue  # re-export; documented at its home
            if not (item.__doc__ and item.__doc__.strip()):
                missing.append(name)
            if inspect.isclass(item):
                for attr_name, attr in vars(item).items():
                    if attr_name.startswith("_"):
                        continue
                    if not inspect.isfunction(attr):
                        continue
                    if attr.__doc__ and attr.__doc__.strip():
                        continue
                    # Overrides inherit the base hook's documentation.
                    if any(
                        (getattr(base, attr_name, None) is not None
                         and getattr(base, attr_name).__doc__)
                        for base in item.__mro__[1:]
                    ):
                        continue
                    missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"


def test_readme_and_design_exist():
    from pathlib import Path
    root = Path(repro.__file__).resolve().parents[2]
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / doc
        assert path.exists(), doc
        assert len(path.read_text()) > 1000, doc
