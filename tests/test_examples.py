"""Smoke tests: the example scripts run end to end.

Only the fast examples run here; the heavier ones
(platform_comparison, api_usability_report) are exercised through the
bench suite's equivalent experiments.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "road_network_routing.py",
     "dynamic_social_network.py", "generator_showdown.py"],
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.startswith('"""'), script.name
        assert '__main__' in text, script.name
