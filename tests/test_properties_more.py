"""Additional property-based tests: serialization roundtrips, cost-model
monotonicity, and incremental-algorithm equivalence."""

import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.incremental import IncrementalWCC
from repro.algorithms.reference import wcc
from repro.cluster import (
    CostParameters,
    TraceRecorder,
    scale_out,
    single_machine,
    price_trace,
)
from repro.core import Graph, read_edge_list, write_edge_list
from repro.datagen.dynamic import EdgeBatch

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_n=30, max_m=90):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return Graph.from_edges(src, dst, num_vertices=n)


@st.composite
def traces(draw, parts=8):
    steps = draw(st.integers(1, 4))
    rec = TraceRecorder(parts)
    for _ in range(steps):
        rec.begin_superstep()
        for p in range(parts):
            rec.add_compute(p, draw(st.floats(0.0, 1e5)))
        pairs = draw(st.integers(0, 3))
        for _ in range(pairs):
            rec.add_message(
                draw(st.integers(0, parts - 1)),
                draw(st.integers(0, parts - 1)),
                draw(st.floats(1.0, 256.0)),
                count=draw(st.integers(1, 50)),
            )
        rec.end_superstep()
    return rec.trace


class TestSerializationProperties:
    @_settings
    @given(graphs())
    def test_edge_list_text_roundtrip(self, g):
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        buffer.seek(0)
        g2 = read_edge_list(buffer, num_vertices=g.num_vertices)
        assert g == g2


class TestCostModelProperties:
    @_settings
    @given(traces(), st.integers(1, 32), st.integers(1, 32))
    def test_more_threads_never_slower(self, trace, t1, t2):
        lo, hi = sorted((t1, t2))
        params = CostParameters()
        slow = price_trace(trace, single_machine(lo), params).seconds
        fast = price_trace(trace, single_machine(hi), params).seconds
        assert fast <= slow + 1e-9

    @_settings
    @given(traces(), st.integers(1, 8))
    def test_compute_phase_shrinks_with_machines(self, trace, machines):
        params = CostParameters()
        one = price_trace(trace, scale_out(1), params)
        many = price_trace(trace, scale_out(machines), params)
        assert many.compute_seconds <= one.compute_seconds + 1e-9

    @_settings
    @given(traces())
    def test_breakdown_adds_up(self, trace):
        params = CostParameters(startup_seconds=0.5)
        priced = price_trace(trace, scale_out(4), params)
        assert priced.seconds == pytest.approx(
            0.5 + priced.compute_seconds + priced.network_seconds
            + priced.barrier_seconds
        )

    @_settings
    @given(traces())
    def test_higher_multiplier_never_faster(self, trace):
        lean = price_trace(trace, single_machine(8),
                           CostParameters(compute_multiplier=1.0)).seconds
        heavy = price_trace(trace, single_machine(8),
                            CostParameters(compute_multiplier=4.0)).seconds
        assert heavy >= lean - 1e-9


class TestIncrementalProperties:
    @_settings
    @given(graphs(), st.integers(1, 5), st.integers(0, 2 ** 16))
    def test_incremental_wcc_matches_batch_order(self, g, batches, seed):
        """Any batching of the same edges yields the same components."""
        src, dst, _ = g.edge_arrays()
        rng = np.random.default_rng(seed)
        order = rng.permutation(src.shape[0])
        src, dst = src[order], dst[order]
        tracker = IncrementalWCC(g.num_vertices)
        bounds = np.linspace(0, src.shape[0], batches + 1).astype(int)
        for t in range(batches):
            tracker.apply_batch(EdgeBatch(
                time=t,
                src=src[bounds[t]: bounds[t + 1]],
                dst=dst[bounds[t]: bounds[t + 1]],
            ))
        assert np.array_equal(tracker.labels(), wcc(g))
