"""Unit tests for the observability layer: spans, counters, exporters."""

import json

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs import CounterRegistry, NullTracer, Tracer


class FakeClock:
    """Deterministic clock advancing a fixed tick per call."""

    def __init__(self, tick: float = 1.0) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value


class TestCounterRegistry:
    def test_vocabulary_preloaded(self):
        reg = CounterRegistry()
        assert obs.COMPUTE_OPS in reg
        assert "TraceRecorder" in reg.describe(obs.COMPUTE_OPS)

    def test_add_and_get(self):
        reg = CounterRegistry()
        reg.add(obs.MSG_COUNT, 2)
        reg.add(obs.MSG_COUNT, 3)
        assert reg.get(obs.MSG_COUNT) == 5.0

    def test_unknown_counter_rejected(self):
        reg = CounterRegistry()
        with pytest.raises(ObservabilityError, match="unknown counter"):
            reg.add("msg_cuont", 1)

    def test_register_extends_vocabulary(self):
        reg = CounterRegistry()
        reg.register("frontier_peak", "Largest frontier seen.")
        reg.add("frontier_peak", 7)
        assert reg.get("frontier_peak") == 7.0

    def test_register_conflicting_doc_rejected(self):
        reg = CounterRegistry()
        with pytest.raises(ObservabilityError, match="different"):
            reg.register(obs.MSG_COUNT, "something else entirely")

    def test_register_same_doc_idempotent(self):
        reg = CounterRegistry()
        reg.register("x", "doc")
        reg.register("x", "doc")

    def test_describe_unknown_raises(self):
        with pytest.raises(ObservabilityError):
            CounterRegistry().describe("nope")

    def test_snapshot_and_reset(self):
        reg = CounterRegistry()
        reg.add(obs.SUPERSTEPS)
        snap = reg.snapshot()
        assert snap == {obs.SUPERSTEPS: 1.0}
        snap[obs.SUPERSTEPS] = 99  # copies, not views
        assert reg.get(obs.SUPERSTEPS) == 1.0
        reg.reset()
        assert reg.snapshot() == {}


class TestSpans:
    def test_nesting_and_parents(self):
        t = Tracer(clock=FakeClock())
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert inner.parent == outer.sid
        assert inner.depth == 1
        assert outer.parent is None
        # completion order: inner closes first
        assert [s.name for s in t.spans] == ["inner", "outer"]

    def test_durations_from_clock(self):
        t = Tracer(clock=FakeClock(tick=1.0))
        with t.span("a"):
            pass
        (span,) = t.find("a")
        assert span.duration == pytest.approx(1.0)

    def test_counter_rollup_to_parent_and_global(self):
        t = Tracer(clock=FakeClock())
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                t.add(obs.COMPUTE_OPS, 10)
            t.add(obs.COMPUTE_OPS, 1)
        assert inner.counters[obs.COMPUTE_OPS] == 10.0
        assert outer.counters[obs.COMPUTE_OPS] == 11.0
        # global registry counted each add exactly once
        assert t.counters.get(obs.COMPUTE_OPS) == 11.0

    def test_attrs_and_set(self):
        t = Tracer(clock=FakeClock())
        with t.span("s", algo="pr") as span:
            span.set(path="bulk")
        assert span.attrs == {"algo": "pr", "path": "bulk"}

    def test_out_of_order_close_raises(self):
        t = Tracer(clock=FakeClock())
        a = t.span("a")
        b = t.span("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(ObservabilityError, match="out of order"):
            a.__exit__(None, None, None)

    def test_reentering_span_raises(self):
        t = Tracer(clock=FakeClock())
        span = t.span("once")
        with span:
            pass
        with pytest.raises(ObservabilityError, match="twice"):
            span.__enter__()

    def test_record_span_simulated(self):
        t = Tracer(clock=FakeClock())
        with t.span("case") as case:
            t.record_span("upload", 3.5)
        (sim,) = t.find("upload")
        assert sim.duration == pytest.approx(3.5)
        assert sim.category == "simulated"
        assert sim.parent == case.sid

    def test_record_span_negative_raises(self):
        t = Tracer(clock=FakeClock())
        with pytest.raises(ObservabilityError, match=">= 0"):
            t.record_span("bad", -1.0)


class TestGlobalTracer:
    def test_default_is_null(self):
        tracer = obs.get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled

    def test_null_tracer_is_inert(self):
        null = obs.NULL_TRACER
        with null.span("anything", category="x", foo=1) as s:
            s.set(bar=2)
        null.add(obs.COMPUTE_OPS, 1e9)
        null.record_span("sim", 5.0)
        # span() always hands back the same shared no-op object
        assert null.span("a") is null.span("b")

    def test_tracing_context_installs_and_restores(self):
        before = obs.get_tracer()
        with obs.tracing() as t:
            assert obs.get_tracer() is t
            assert t.enabled
        assert obs.get_tracer() is before

    def test_tracing_restores_on_exception(self):
        before = obs.get_tracer()
        with pytest.raises(RuntimeError):
            with obs.tracing():
                raise RuntimeError("boom")
        assert obs.get_tracer() is before

    def test_set_tracer_returns_previous(self):
        t = Tracer()
        prev = obs.set_tracer(t)
        try:
            assert obs.get_tracer() is t
        finally:
            obs.set_tracer(prev)


def _session() -> Tracer:
    t = Tracer(clock=FakeClock(tick=0.5))
    with t.span("case", category="case", dataset="S8-Std"):
        with t.span("superstep", category="superstep", index=0):
            t.add(obs.COMPUTE_OPS, 4)
            t.add(obs.MSG_COUNT, 2)
        t.record_span("run", 7.25)
    return t


class TestExporters:
    def test_jsonl_lines_parse(self):
        t = _session()
        lines = obs.to_jsonl(t).strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == len(t.spans) + 1
        assert records[-1]["type"] == "counters"
        assert records[-1]["values"][obs.COMPUTE_OPS] == 4.0
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert span_names == {"case", "superstep", "run"}

    def test_jsonl_parent_links(self):
        t = _session()
        records = [json.loads(l) for l in obs.to_jsonl(t).strip().splitlines()]
        by_name = {r["name"]: r for r in records if r["type"] == "span"}
        assert by_name["superstep"]["parent"] == by_name["case"]["sid"]
        assert by_name["run"]["parent"] == by_name["case"]["sid"]

    def test_chrome_trace_round_trip(self):
        t = _session()
        payload = json.loads(obs.chrome_trace_json(t))
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(t.spans)
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid", "args"}
            assert event["dur"] >= 0

    def test_chrome_trace_simulated_track(self):
        t = _session()
        events = obs.to_chrome_trace(t)["traceEvents"]
        sim = [e for e in events if e["ph"] == "X" and e["cat"] == "simulated"]
        wall = [e for e in events if e["ph"] == "X" and e["cat"] != "simulated"]
        assert {e["tid"] for e in sim} == {1}
        assert {e["tid"] for e in wall} == {0}
        assert sim[0]["dur"] == pytest.approx(7.25e6)  # microseconds

    def test_chrome_trace_thread_metadata(self):
        events = obs.to_chrome_trace(_session())["traceEvents"]
        meta = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"repro", "wall-clock", "simulated-seconds"} <= meta

    def test_chrome_trace_args_carry_counters(self):
        events = obs.to_chrome_trace(_session())["traceEvents"]
        (step,) = [e for e in events if e["name"] == "superstep"]
        assert step["args"][obs.COMPUTE_OPS] == 4.0
        assert step["args"]["index"] == 0

    def test_summary_tree_shape(self):
        text = obs.summary_tree(_session())
        assert "case  1x" in text
        assert "  superstep  1x" in text
        assert f"{obs.COMPUTE_OPS}=4" in text
        assert "-- session counters --" in text

    def test_summary_tree_max_depth(self):
        text = obs.summary_tree(_session(), max_depth=1)
        assert "case" in text
        assert "superstep" not in text
