"""Acceptance tests for engine instrumentation.

Two invariants from the observability design:

* every engine family emits nested spans when tracing is enabled;
* tracing is read-only with respect to metered work — the ``WorkTrace``
  a run produces must be bit-identical with and without a tracer.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.bench.runner import clear_case_cache, run_case
from repro.cluster.spec import single_machine
from repro.datagen.catalog import clear_dataset_cache
from repro.datagen.fft import generate_fft
from repro.platforms.registry import get_platform

#: One representative platform per computing model, with an algorithm
#: that model supports.
ENGINE_FAMILIES = [
    ("Pregel+", "pr", "vertex-centric"),
    ("PowerGraph", "pr", "edge-centric"),
    ("Grape", "pr", "block-centric"),
    ("G-thinker", "tc", "subgraph-centric"),
]

#: Span names each family's per-superstep/phase instrumentation uses.
STEP_SPAN_NAMES = {
    "vertex-centric": {"superstep"},
    "edge-centric": {"gas-iteration"},
    "block-centric": {"peval", "inceval"},
    "subgraph-centric": {"task-wave"},
}


@pytest.fixture(scope="module")
def graph():
    return generate_fft(200, alpha=40.0, seed=3).graph


@pytest.fixture(scope="module")
def cluster():
    return single_machine(32)


def _traces_identical(a, b) -> bool:
    if len(a.steps) != len(b.steps):
        return False
    return all(
        np.array_equal(x.ops, y.ops)
        and np.array_equal(x.msg_count, y.msg_count)
        and np.array_equal(x.msg_bytes, y.msg_bytes)
        for x, y in zip(a.steps, b.steps)
    )


@pytest.mark.parametrize(
    "platform_name,algorithm,family",
    ENGINE_FAMILIES,
    ids=[f[2] for f in ENGINE_FAMILIES],
)
class TestEngineFamilies:
    def test_worktrace_parity_with_tracer_on(
        self, platform_name, algorithm, family, graph, cluster
    ):
        platform = get_platform(platform_name)
        plain = platform.run(algorithm, graph, cluster)
        with obs.tracing():
            traced = platform.run(algorithm, graph, cluster)
        assert _traces_identical(plain.trace, traced.trace)
        assert np.array_equal(
            np.asarray(plain.values), np.asarray(traced.values)
        )

    def test_nested_spans_emitted(
        self, platform_name, algorithm, family, graph, cluster
    ):
        platform = get_platform(platform_name)
        with obs.tracing() as tracer:
            platform.run(algorithm, graph, cluster)
        steps = [s for s in tracer.spans if s.category == "superstep"]
        assert steps, f"{family} emitted no per-superstep spans"
        assert {s.name for s in steps} <= STEP_SPAN_NAMES[family]
        # nested: every superstep span has an enclosing engine span...
        engines = {s.sid: s for s in tracer.spans if s.category == "engine"}
        assert all(s.parent in engines for s in steps)
        # ...which itself nests under the platform's execute phase.
        assert all(e.depth >= 1 for e in engines.values())

    def test_superstep_spans_carry_counters(
        self, platform_name, algorithm, family, graph, cluster
    ):
        platform = get_platform(platform_name)
        with obs.tracing() as tracer:
            result = platform.run(algorithm, graph, cluster)
        steps = [s for s in tracer.spans if s.category == "superstep"]
        total_ops = sum(s.counters.get(obs.COMPUTE_OPS, 0.0) for s in steps)
        assert total_ops == pytest.approx(result.trace.total_ops)
        assert tracer.counters.get(obs.SUPERSTEPS) == len(steps)


class TestChromeTraceAcceptance:
    """Chrome-trace export of a PR-on-S8 run loads as valid trace JSON."""

    @pytest.fixture(scope="class")
    def tracer(self):
        clear_case_cache()
        clear_dataset_cache()  # so the trace covers fftdg/generate too
        with obs.tracing() as t:
            outcome = run_case("Pregel+", "pr", "S8-Std")
        assert outcome.status == "ok"
        return t

    def test_round_trips_as_trace_event_json(self, tracer):
        payload = json.loads(obs.chrome_trace_json(tracer))
        assert isinstance(payload["traceEvents"], list)
        for event in payload["traceEvents"]:
            assert event["ph"] in {"X", "M"}
            if event["ph"] == "X":
                assert isinstance(event["ts"], (int, float))
                assert event["dur"] >= 0
                assert isinstance(event["args"], dict)

    def test_case_span_hierarchy(self, tracer):
        (case,) = tracer.find("case/Pregel+/pr/S8-Std")
        children = [s for s in tracer.spans if s.parent == case.sid]
        names = {s.name for s in children}
        assert {"build-dataset", "Pregel+/pr",
                "upload", "run", "writeback"} <= names

    def test_simulated_phases_match_metrics(self, tracer):
        clear_case_cache()  # the fixture's cache entry, keep tests isolated
        (run_span,) = tracer.find("run")
        assert run_span.category == "simulated"
        assert run_span.duration > 0

    def test_counters_accumulated(self, tracer):
        assert tracer.counters.get(obs.CASES_RUN) == 1.0
        assert tracer.counters.get(obs.SUPERSTEPS) > 0
        assert tracer.counters.get(obs.GEN_EDGES) > 0
