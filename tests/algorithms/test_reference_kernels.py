"""Tests for the sequential reference kernels against known answers and
cross-validating oracles."""

import itertools

import numpy as np
import pytest

from repro.algorithms.reference import (
    bellman_ford,
    betweenness_centrality,
    betweenness_from_source,
    bfs,
    component_sizes,
    core_decomposition,
    degeneracy_order,
    dijkstra,
    enumerate_k_cliques,
    k_clique_count,
    k_core,
    label_propagation,
    local_clustering_coefficient,
    pagerank,
    per_vertex_triangles,
    triangle_count,
    wcc,
    wcc_union_find,
)
from repro.core import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.errors import GeneratorParameterError, GraphStructureError


class TestPageRank:
    def test_sums_to_one(self, medium_graph):
        assert pagerank(medium_graph).sum() == pytest.approx(1.0)

    def test_uniform_on_symmetric_graph(self):
        ranks = pagerank(cycle_graph(6), max_iterations=50)
        assert np.allclose(ranks, 1.0 / 6.0)

    def test_hub_ranks_highest(self):
        ranks = pagerank(star_graph(10), max_iterations=50)
        assert ranks[0] == ranks.max()

    def test_dangling_mass_redistributed(self):
        g = Graph.from_edges([0], [1], directed=True, num_vertices=3)
        ranks = pagerank(g, max_iterations=100, tolerance=1e-12)
        assert ranks.sum() == pytest.approx(1.0)
        assert ranks[1] > ranks[0]

    def test_convergence_early_stop(self, medium_graph):
        a = pagerank(medium_graph, max_iterations=500, tolerance=1e-12)
        b = pagerank(medium_graph, max_iterations=1000, tolerance=1e-12)
        assert np.allclose(a, b, atol=1e-9)

    def test_rejects_bad_damping(self, path5):
        with pytest.raises(GeneratorParameterError):
            pagerank(path5, damping=1.5)

    def test_empty_graph(self):
        assert pagerank(Graph.from_edges([], [], num_vertices=0)).size == 0


class TestSSSP:
    def test_dijkstra_path_graph(self):
        d = dijkstra(path_graph(5, weighted=True), 0)
        assert np.array_equal(d, [0, 1, 2, 3, 4])

    def test_unweighted_is_hop_distance(self, medium_graph):
        d = dijkstra(medium_graph, 0)
        levels = bfs(medium_graph, 0).astype(float)
        levels[levels < 0] = np.inf
        assert np.array_equal(d, levels)

    def test_dijkstra_vs_bellman_ford(self, weighted_graph):
        a = dijkstra(weighted_graph, 0)
        b = bellman_ford(weighted_graph, 0)
        assert np.allclose(a, b, equal_nan=True)

    def test_unreachable_infinite(self):
        g = Graph.from_edges([0], [1], num_vertices=3)
        assert dijkstra(g, 0)[2] == np.inf

    def test_rejects_negative_weights(self):
        g = Graph.from_edges([0], [1], weights=[-1.0])
        with pytest.raises(GraphStructureError):
            dijkstra(g, 0)

    def test_rejects_bad_source(self, path5):
        with pytest.raises(GraphStructureError):
            dijkstra(path5, 99)

    def test_triangle_inequality(self, weighted_graph):
        d = dijkstra(weighted_graph, 0)
        src, dst, w = weighted_graph.edge_arrays()
        for a, b, weight in zip(src.tolist(), dst.tolist(), w.tolist()):
            if np.isfinite(d[a]):
                assert d[b] <= d[a] + weight + 1e-9


class TestWCC:
    def test_matches_union_find(self, medium_graph):
        assert np.array_equal(wcc(medium_graph), wcc_union_find(medium_graph))

    def test_component_sizes(self, two_components):
        sizes = component_sizes(wcc(two_components))
        assert sizes == {0: 3, 3: 2, 5: 1}

    def test_directed_weak_connectivity(self):
        g = Graph.from_edges([0, 2], [1, 1], directed=True)
        labels = wcc(g)
        assert np.unique(labels).size == 1


class TestLPA:
    def test_two_cliques_get_two_labels(self):
        src = [0, 0, 1, 3, 3, 4, 2]
        dst = [1, 2, 2, 4, 5, 5, 3]
        g = Graph.from_edges(src, dst)
        labels = label_propagation(g, max_iterations=20)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]

    def test_isolated_keeps_own_label(self):
        g = Graph.from_edges([0], [1], num_vertices=3)
        labels = label_propagation(g)
        assert labels[2] == 2

    def test_deterministic(self, medium_graph):
        a = label_propagation(medium_graph)
        b = label_propagation(medium_graph)
        assert np.array_equal(a, b)

    def test_custom_seed_labels(self):
        g = path_graph(4)
        labels = label_propagation(
            g, labels=np.array([7, 7, 9, 9]), max_iterations=1
        )
        assert labels[1] == 7

    def test_rejects_bad_label_length(self, path5):
        with pytest.raises(GeneratorParameterError):
            label_propagation(path5, labels=np.array([1, 2]))


class TestBC:
    def test_path_graph_known(self):
        bc = betweenness_centrality(path_graph(5))
        assert np.allclose(bc, [0, 3, 4, 3, 0])

    def test_star_center(self):
        bc = betweenness_centrality(star_graph(6))
        # center lies on all C(5,2) = 10 pairs
        assert bc[0] == pytest.approx(10.0)
        assert np.allclose(bc[1:], 0.0)

    def test_single_source_sums(self, medium_graph):
        """Sum of single-source deltas over all sources = 2x undirected BC."""
        total = sum(
            betweenness_from_source(medium_graph, s)
            for s in range(medium_graph.num_vertices)
        )
        full = betweenness_centrality(medium_graph)
        assert np.allclose(total / 2.0, full)

    def test_normalized_bounds(self):
        bc = betweenness_centrality(random_graph(40, 150, seed=1),
                                    normalized=True)
        assert np.all(bc >= 0)
        assert np.all(bc <= 1.0 + 1e-9)

    def test_weighted_brandes_path(self):
        g = path_graph(4, weighted=True)
        bc = betweenness_from_source(g, 0)
        assert np.allclose(bc, [0, 2, 1, 0])

    def test_rejects_bad_source(self, path5):
        with pytest.raises(GraphStructureError):
            betweenness_from_source(path5, -1)


class TestCoreDecomposition:
    def test_complete_graph(self, k5):
        assert np.array_equal(core_decomposition(k5), [4] * 5)

    def test_path_graph(self):
        assert np.array_equal(core_decomposition(path_graph(5)), [1] * 5)

    def test_clique_with_tail(self):
        # K4 {0..3} with tail 3-4-5
        g = Graph.from_edges([0, 0, 0, 1, 1, 2, 3, 4],
                             [1, 2, 3, 2, 3, 3, 4, 5])
        coreness = core_decomposition(g)
        assert np.array_equal(coreness, [3, 3, 3, 3, 1, 1])

    def test_invariant_k_core_degrees(self, medium_graph):
        """Every vertex of the k-core has >= k neighbours inside it."""
        coreness = core_decomposition(medium_graph)
        k = int(coreness.max())
        members = k_core(medium_graph, k)
        member_set = set(members.tolist())
        for v in members:
            inside = sum(
                1 for u in medium_graph.neighbors(int(v)).tolist()
                if u in member_set
            )
            assert inside >= k

    def test_degeneracy_order_is_permutation(self, medium_graph):
        order = degeneracy_order(medium_graph)
        assert np.array_equal(np.sort(order),
                              np.arange(medium_graph.num_vertices))


class TestTriangles:
    def test_known_counts(self, k5):
        assert triangle_count(k5) == 10
        assert triangle_count(cycle_graph(4)) == 0
        assert triangle_count(grid_graph(3, 3)) == 0

    def test_per_vertex_sum(self, medium_graph):
        per_vertex = per_vertex_triangles(medium_graph)
        assert per_vertex.sum() == 3 * triangle_count(medium_graph)

    def test_per_vertex_k4(self):
        g = complete_graph(4)
        assert np.array_equal(per_vertex_triangles(g), [3, 3, 3, 3])


class TestKClique:
    def _brute(self, g, k):
        adj = [set(g.neighbors(v).tolist()) for v in range(g.num_vertices)]
        count = 0
        for combo in itertools.combinations(range(g.num_vertices), k):
            if all(b in adj[a] for a, b in itertools.combinations(combo, 2)):
                count += 1
        return count

    def test_matches_triangles(self, medium_graph):
        assert k_clique_count(medium_graph, 3) == triangle_count(medium_graph)

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_brute_force(self, k):
        g = random_graph(22, 80, seed=13)
        assert k_clique_count(g, k) == self._brute(g, k)

    def test_complete_graph_binomial(self):
        from math import comb
        g = complete_graph(7)
        for k in (3, 4, 5, 6, 7):
            assert k_clique_count(g, k) == comb(7, k)

    def test_k1_k2(self, k5):
        assert k_clique_count(k5, 1) == 5
        assert k_clique_count(k5, 2) == 10

    def test_enumeration_unique_and_valid(self):
        g = random_graph(20, 70, seed=4)
        cliques = enumerate_k_cliques(g, 4)
        assert len(cliques) == len(set(cliques))
        for clique in cliques:
            for a, b in itertools.combinations(clique, 2):
                assert g.has_edge(a, b)

    def test_rejects_bad_k(self, k5):
        with pytest.raises(GeneratorParameterError):
            k_clique_count(k5, 0)


class TestExtras:
    def test_bfs_path(self):
        assert np.array_equal(bfs(path_graph(4), 0), [0, 1, 2, 3])

    def test_lcc_complete(self):
        assert np.allclose(local_clustering_coefficient(complete_graph(5)),
                           1.0)

    def test_lcc_star_zero(self):
        assert np.allclose(local_clustering_coefficient(star_graph(5)), 0.0)

    def test_lcc_matches_stats_module(self, medium_graph):
        from repro.core import local_clustering
        assert np.allclose(
            local_clustering_coefficient(medium_graph),
            local_clustering(medium_graph),
        )
