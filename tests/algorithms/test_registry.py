"""Tests for the algorithm metadata registry (Tables 2 and 3)."""

import pytest

from repro.algorithms import (
    ALGORITHMS,
    ITERATIVE,
    SEQUENTIAL,
    SUBGRAPH,
    core_algorithms,
    get_algorithm,
    ldbc_algorithms,
)
from repro.errors import BenchmarkError


def test_eight_core_algorithms():
    assert len(core_algorithms()) == 8
    assert {a.key for a in core_algorithms()} == {
        "pr", "lpa", "sssp", "wcc", "bc", "cd", "tc", "kc"
    }


def test_six_ldbc_algorithms():
    assert {a.key for a in ldbc_algorithms()} == {
        "pr", "lpa", "sssp", "wcc", "bfs", "lcc"
    }


def test_classes_match_section_3_3():
    assert get_algorithm("pr").algorithm_class == ITERATIVE
    assert get_algorithm("lpa").algorithm_class == ITERATIVE
    assert get_algorithm("sssp").algorithm_class == SEQUENTIAL
    assert get_algorithm("wcc").algorithm_class == SEQUENTIAL
    assert get_algorithm("bc").algorithm_class == SEQUENTIAL
    assert get_algorithm("cd").algorithm_class == SEQUENTIAL
    assert get_algorithm("tc").algorithm_class == SUBGRAPH
    assert get_algorithm("kc").algorithm_class == SUBGRAPH


def test_popularity_data_present_for_core():
    for a in core_algorithms():
        assert a.papers is not None
        assert a.dblp_hits is not None


def test_table2_spot_values():
    assert get_algorithm("pr").dblp_hits == 1012
    assert get_algorithm("lpa").papers == 39
    assert get_algorithm("kc").wos_hits == 395


def test_topics_cover_five_areas():
    topics = {a.topic for a in core_algorithms()}
    assert topics == {
        "Centrality", "Community Detection", "Traversal",
        "Cohesive Subgraph", "Pattern Matching",
    }


def test_ldbc_lacks_diversity():
    """The paper's critique: LDBC covers only three topics."""
    topics = {a.topic for a in ldbc_algorithms()}
    assert len(topics) == 3


def test_unknown_algorithm_rejected():
    with pytest.raises(BenchmarkError):
        get_algorithm("nope")
