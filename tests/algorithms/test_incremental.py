"""Tests for dynamic graph streams and incremental algorithms."""

import numpy as np
import pytest

from repro.algorithms.incremental import (
    IncrementalPageRank,
    IncrementalWCC,
    replay_stream_wcc,
)
from repro.algorithms.reference import pagerank, wcc
from repro.datagen.dynamic import EdgeBatch, generate_stream
from repro.errors import GeneratorParameterError


class TestStream:
    def test_batches_cover_final_graph(self):
        stream = generate_stream(400, num_batches=5, seed=3)
        assert len(stream) == 5
        final = stream.final_graph()
        assert final.num_edges == stream.total_edges  # dedup-free split

    def test_snapshots_grow(self):
        stream = generate_stream(300, num_batches=4, seed=1)
        sizes = [stream.snapshot(t).num_edges for t in range(4)]
        assert sizes == sorted(sizes)
        assert sizes[0] > 0

    def test_snapshot_bounds_checked(self):
        stream = generate_stream(100, num_batches=3, seed=0)
        with pytest.raises(GeneratorParameterError):
            stream.snapshot(3)

    def test_deterministic(self):
        a = generate_stream(200, num_batches=4, seed=9)
        b = generate_stream(200, num_batches=4, seed=9)
        assert a.final_graph() == b.final_graph()
        assert np.array_equal(a.batches[0].src, b.batches[0].src)

    def test_rejects_bad_batches(self):
        with pytest.raises(GeneratorParameterError):
            generate_stream(100, num_batches=0)


class TestIncrementalWCC:
    def test_matches_recompute_at_every_snapshot(self):
        stream = generate_stream(300, num_batches=5, seed=2)
        tracker = IncrementalWCC(stream.num_vertices)
        for t, batch in enumerate(stream):
            tracker.apply_batch(batch)
            assert np.array_equal(
                tracker.labels(), wcc(stream.snapshot(t))
            ), f"batch {t}"

    def test_component_count_tracked(self):
        tracker = IncrementalWCC(4)
        assert tracker.num_components == 4
        batch = EdgeBatch(time=0, src=np.array([0, 2]), dst=np.array([1, 3]))
        merges = tracker.apply_batch(batch)
        assert merges == 2
        assert tracker.num_components == 2

    def test_duplicate_edges_cause_no_merge(self):
        tracker = IncrementalWCC(3)
        batch = EdgeBatch(time=0, src=np.array([0, 0]), dst=np.array([1, 1]))
        assert tracker.apply_batch(batch) == 1

    def test_replay_reports_savings(self):
        stream = generate_stream(500, num_batches=8, seed=4)
        report = replay_stream_wcc(stream)
        # maintaining union-find beats recomputing per batch
        assert report["incremental_ops"] < report["recompute_ops"]
        assert report["final_components"] >= 1


class TestIncrementalPageRank:
    def test_matches_reference_fixpoint(self):
        stream = generate_stream(250, num_batches=3, seed=5)
        final = stream.final_graph()
        tracker = IncrementalPageRank(250, tolerance=1e-12)
        for t in range(len(stream)):
            tracker.update(stream.snapshot(t))
        reference = pagerank(final, max_iterations=500, tolerance=1e-12)
        assert np.allclose(tracker.ranks, reference, atol=1e-8)

    def test_warm_start_converges_faster(self):
        stream = generate_stream(400, num_batches=6, seed=6)
        warm = IncrementalPageRank(400, tolerance=1e-10)
        cold_iterations = []
        warm_iterations = []
        for t in range(len(stream)):
            snapshot = stream.snapshot(t)
            warm.update(snapshot)
            warm_iterations.append(warm.last_iterations)
            cold = IncrementalPageRank(400, tolerance=1e-10)
            cold.update(snapshot, cold_start=True)
            cold_iterations.append(cold.last_iterations)
        # after the first batch, warm restarts need fewer iterations
        assert sum(warm_iterations[1:]) < sum(cold_iterations[1:])

    def test_rejects_size_mismatch(self):
        from repro.core import path_graph
        tracker = IncrementalPageRank(10)
        with pytest.raises(GeneratorParameterError):
            tracker.update(path_graph(5))

    def test_rejects_bad_damping(self):
        with pytest.raises(GeneratorParameterError):
            IncrementalPageRank(10, damping=2.0)
