"""Tests for the K-Hop kernel (WGB's workload)."""

import numpy as np
import pytest

from repro.algorithms.reference import bfs, k_hop
from repro.core import Graph, complete_graph, path_graph, random_graph
from repro.errors import GeneratorParameterError


def test_k0_is_just_source():
    assert np.array_equal(k_hop(path_graph(5), 2, 0), [2])


def test_path_graph_hops():
    g = path_graph(7)
    assert np.array_equal(k_hop(g, 3, 1), [2, 3, 4])
    assert np.array_equal(k_hop(g, 3, 2), [1, 2, 3, 4, 5])


def test_complete_graph_one_hop_is_everything():
    g = complete_graph(6)
    assert k_hop(g, 0, 1).size == 6


def test_large_k_reaches_component_only():
    g = Graph.from_edges([0, 2], [1, 3], num_vertices=5)
    assert np.array_equal(k_hop(g, 0, 100), [0, 1])


def test_monotone_in_k():
    g = random_graph(120, 400, seed=3)
    sizes = [k_hop(g, 0, k).size for k in range(5)]
    assert sizes == sorted(sizes)


def test_consistent_with_bfs_levels():
    g = random_graph(100, 300, seed=4)
    levels = bfs(g, 0)
    for k in (1, 2, 3):
        expected = np.nonzero((levels >= 0) & (levels <= k))[0]
        assert np.array_equal(k_hop(g, 0, k), expected)


def test_rejects_negative_k():
    with pytest.raises(GeneratorParameterError):
        k_hop(path_graph(3), 0, -1)
