"""Tests for the classic generators (ER, WS, BA) and Kronecker."""

import numpy as np
import pytest

from repro.core import average_clustering, connected_components
from repro.datagen import (
    KroneckerConfig,
    barabasi_albert,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    kronecker,
    watts_strogatz,
)
from repro.errors import GeneratorParameterError


class TestErdosRenyi:
    def test_gnp_edge_count_near_expectation(self):
        result = erdos_renyi_gnp(100, 0.1, seed=0)
        expected = 0.1 * 100 * 99 / 2
        assert result.graph.num_edges == pytest.approx(expected, rel=0.25)

    def test_gnp_extremes(self):
        assert erdos_renyi_gnp(10, 0.0).graph.num_edges == 0
        assert erdos_renyi_gnp(10, 1.0).graph.num_edges == 45

    def test_gnp_counts_all_pairs_as_trials(self):
        result = erdos_renyi_gnp(20, 0.3, seed=1)
        assert result.counter.trials == 190

    def test_gnp_rejects_bad_p(self):
        with pytest.raises(GeneratorParameterError):
            erdos_renyi_gnp(10, 1.5)

    def test_gnm_exact_count(self):
        result = erdos_renyi_gnm(50, 200, seed=2)
        assert result.graph.num_edges == 200

    def test_gnm_rejects_impossible(self):
        with pytest.raises(GeneratorParameterError):
            erdos_renyi_gnm(5, 100)

    def test_gnm_deterministic(self):
        assert erdos_renyi_gnm(40, 80, seed=3).graph == \
            erdos_renyi_gnm(40, 80, seed=3).graph


class TestWattsStrogatz:
    def test_no_rewiring_keeps_lattice(self):
        g = watts_strogatz(20, 4, 0.0, seed=0).graph
        assert g.num_edges == 40
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 2)

    def test_high_clustering_at_low_beta(self):
        g = watts_strogatz(100, 6, 0.05, seed=1).graph
        assert average_clustering(g) > 0.3

    def test_rewiring_reduces_clustering(self):
        low = watts_strogatz(100, 6, 0.0, seed=1).graph
        high = watts_strogatz(100, 6, 1.0, seed=1).graph
        assert average_clustering(high) < average_clustering(low)

    def test_rejects_odd_k(self):
        with pytest.raises(GeneratorParameterError):
            watts_strogatz(10, 3, 0.1)

    def test_rejects_bad_beta(self):
        with pytest.raises(GeneratorParameterError):
            watts_strogatz(10, 4, 2.0)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(100, 3, seed=0).graph
        assert g.num_edges == pytest.approx((100 - 3) * 3, abs=5)

    def test_connected(self):
        g = barabasi_albert(200, 2, seed=1).graph
        labels = connected_components(g)
        # all vertices that have edges belong to one component
        assert np.unique(labels[2:]).size == 1

    def test_heavy_tail(self):
        g = barabasi_albert(500, 2, seed=2).graph
        degrees = g.out_degrees()
        assert degrees.max() > 8 * np.median(degrees[degrees > 0])

    def test_rejects_bad_params(self):
        with pytest.raises(GeneratorParameterError):
            barabasi_albert(5, 5)
        with pytest.raises(GeneratorParameterError):
            barabasi_albert(10, 0)


class TestKronecker:
    def test_vertex_count_power_of_two(self):
        result = kronecker(KroneckerConfig(scale=8, seed=0))
        assert result.graph.num_vertices == 256

    def test_edge_factor_trials(self):
        cfg = KroneckerConfig(scale=7, edge_factor=8, seed=1)
        result = kronecker(cfg)
        assert result.counter.trials == 8 * 128
        # dedup/self-loop removal shrinks the final edge count
        assert result.graph.num_edges <= 8 * 128

    def test_skewed_degrees(self):
        g = kronecker(KroneckerConfig(scale=10, seed=2)).graph
        degrees = g.out_degrees()
        positive = degrees[degrees > 0]
        assert degrees.max() > 5 * np.median(positive)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GeneratorParameterError):
            KroneckerConfig(scale=4, a=0.6, b=0.3, c=0.2)

    def test_rejects_bad_scale(self):
        with pytest.raises(GeneratorParameterError):
            KroneckerConfig(scale=0)

    def test_deterministic(self):
        a = kronecker(KroneckerConfig(scale=6, seed=5)).graph
        b = kronecker(KroneckerConfig(scale=6, seed=5)).graph
        assert a == b
