"""Tests for the LDBC-DG baseline generator."""

import numpy as np
import pytest

from repro.datagen import (
    LDBCDG,
    LDBCDGConfig,
    generate_ldbc,
    ldbc_params_for_mean_degree,
)
from repro.errors import GeneratorParameterError


class TestConfig:
    def test_rejects_bad_p(self):
        with pytest.raises(GeneratorParameterError):
            LDBCDGConfig(num_vertices=10, p=1.0)
        with pytest.raises(GeneratorParameterError):
            LDBCDGConfig(num_vertices=10, p=0.0)

    def test_rejects_bad_p_limit(self):
        with pytest.raises(GeneratorParameterError):
            LDBCDGConfig(num_vertices=10, p_limit=0.0)

    def test_rejects_negative_budget(self):
        with pytest.raises(GeneratorParameterError):
            LDBCDGConfig(num_vertices=10, degree_budget=-1)


class TestGeneration:
    def test_deterministic(self):
        a = generate_ldbc(300, seed=7)
        b = generate_ldbc(300, seed=7)
        assert a.graph == b.graph
        assert a.counter.trials == b.counter.trials

    def test_trials_include_failures(self):
        result = generate_ldbc(300, p=0.5, p_limit=0.05, seed=1)
        assert result.counter.failures > 0
        assert result.counter.trials > result.counter.edges

    def test_degree_budget_respected(self):
        cfg = LDBCDGConfig(num_vertices=200, degree_budget=3, seed=2)
        g = LDBCDG(cfg).generate().graph
        # out-edges per source <= budget; total degree may be higher
        src, _, _ = g.edge_arrays()
        counts = np.bincount(src, minlength=200)
        assert counts.max() <= 3

    def test_target_edges_cap(self):
        cfg = LDBCDGConfig(num_vertices=300, target_edges=50, seed=1)
        assert LDBCDG(cfg).generate().graph.num_edges <= 50

    def test_tiny_graphs(self):
        assert generate_ldbc(0).graph.num_vertices == 0
        assert generate_ldbc(1).graph.num_edges == 0

    def test_edges_point_forward(self):
        cfg = LDBCDGConfig(num_vertices=150, seed=3,
                           use_homophily_order=False)
        g = LDBCDG(cfg).generate().graph
        src, dst, _ = g.edge_arrays()
        assert np.all(dst > src)


class TestDensityMatching:
    def test_mean_degree_approximately_hit(self):
        cfg = ldbc_params_for_mean_degree(800, 16.0)
        g = LDBCDG(cfg).generate().graph
        degree = 2 * g.num_edges / 800
        assert degree == pytest.approx(16.0, rel=0.35)

    def test_sparse_targets_are_inefficient(self):
        """The paper's Fig. 9 claim: matched-density LDBC-DG needs many
        trials per edge."""
        cfg = ldbc_params_for_mean_degree(800, 16.0)
        result = LDBCDG(cfg).generate()
        assert result.counter.trials_per_edge > 5.0

    def test_rejects_bad_target(self):
        with pytest.raises(GeneratorParameterError):
            ldbc_params_for_mean_degree(100, 0.0)
