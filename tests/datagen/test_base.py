"""Tests for generator infrastructure (trial counting, homophily order)."""

import numpy as np
import pytest

from repro.datagen import (
    GenerationResult,
    TrialCounter,
    generate_vertex_properties,
    homophily_order,
)
from repro.datagen.base import VertexProperties
from repro.core import path_graph
from repro.errors import GeneratorParameterError


class TestTrialCounter:
    def test_record(self):
        c = TrialCounter()
        c.record_trial(True)
        c.record_trial(False)
        c.record_trial(True)
        assert c.trials == 3
        assert c.edges == 2
        assert c.failures == 1

    def test_trials_per_edge(self):
        c = TrialCounter(trials=30, edges=10)
        assert c.trials_per_edge == pytest.approx(3.0)

    def test_trials_per_edge_degenerate(self):
        assert TrialCounter().trials_per_edge == 0.0
        assert TrialCounter(trials=5, edges=0).trials_per_edge == float("inf")

    def test_merge(self):
        a = TrialCounter(trials=10, edges=4)
        b = TrialCounter(trials=5, edges=5)
        a.merge(b)
        assert a.trials == 15
        assert a.edges == 9


class TestGenerationResult:
    def test_edges_per_second(self):
        r = GenerationResult(
            graph=path_graph(11), counter=TrialCounter(),
            elapsed_seconds=2.0,
        )
        assert r.edges_per_second == pytest.approx(5.0)

    def test_zero_elapsed(self):
        r = GenerationResult(
            graph=path_graph(3), counter=TrialCounter(), elapsed_seconds=0.0
        )
        assert r.edges_per_second == float("inf")


class TestHomophilyOrder:
    def test_properties_shapes(self):
        props = generate_vertex_properties(50, seed=1)
        assert props.location.shape == (50, 2)
        assert props.interest.shape == (50,)

    def test_rejects_negative(self):
        with pytest.raises(GeneratorParameterError):
            generate_vertex_properties(-1)

    def test_order_is_permutation(self):
        props = generate_vertex_properties(100, seed=2)
        order = homophily_order(props)
        assert np.array_equal(np.sort(order), np.arange(100))

    def test_interest_groups_contiguous(self):
        """Vertices sharing an interest end up adjacent in the order."""
        props = generate_vertex_properties(200, seed=3)
        order = homophily_order(props)
        interests = props.interest[order]
        # interests along the order are sorted
        assert np.all(np.diff(interests) >= 0)

    def test_deterministic(self):
        a = homophily_order(generate_vertex_properties(80, seed=4))
        b = homophily_order(generate_vertex_properties(80, seed=4))
        assert np.array_equal(a, b)

    def test_zorder_groups_nearby_locations(self):
        # Two clusters of locations with one interest: Z-order must not
        # interleave far-apart clusters.
        loc = np.zeros((4, 2), dtype=np.uint32)
        loc[0] = (0, 0)
        loc[1] = (1, 1)
        loc[2] = (60000, 60000)
        loc[3] = (60001, 60001)
        props = VertexProperties(location=loc,
                                 interest=np.zeros(4, dtype=np.int64))
        order = homophily_order(props).tolist()
        assert abs(order.index(0) - order.index(1)) == 1
        assert abs(order.index(2) - order.index(3)) == 1
