"""Tests for the LiveJournal surrogate, weights, and dataset catalog."""

import numpy as np
import pytest

from repro.core import (
    approximate_diameter,
    average_clustering,
    connected_components,
    effective_diameter,
    path_graph,
)
from repro.datagen import (
    DATASETS,
    build_dataset,
    clear_dataset_cache,
    dataset_names,
    exponential_weights,
    livejournal_surrogate,
    uniform_weights,
    unit_weights,
)
from repro.errors import GeneratorParameterError


class TestSurrogate:
    def test_connected(self):
        g = livejournal_surrogate(500, seed=1).graph
        assert np.unique(connected_components(g)).size == 1

    def test_high_clustering(self):
        """LiveJournal's average CC is ~0.27; the surrogate must be in
        the same regime (well above an ER graph's)."""
        g = livejournal_surrogate(600, seed=2).graph
        assert average_clustering(g) > 0.15

    def test_small_effective_diameter(self):
        g = livejournal_surrogate(800, seed=3).graph
        assert effective_diameter(g) <= 9

    def test_heavy_degree_tail(self):
        g = livejournal_surrogate(800, seed=4).graph
        degrees = g.out_degrees()
        assert degrees.max() > 4 * np.median(degrees)

    def test_deterministic(self):
        assert livejournal_surrogate(300, seed=5).graph == \
            livejournal_surrogate(300, seed=5).graph

    def test_rejects_tiny(self):
        with pytest.raises(GeneratorParameterError):
            livejournal_surrogate(4)


class TestWeights:
    def test_unit_weights(self):
        g = unit_weights(path_graph(5))
        assert g.is_weighted
        assert np.all(g.weights == 1.0)

    def test_uniform_weights_range(self):
        g = uniform_weights(path_graph(50), low=2.0, high=5.0, seed=1)
        assert np.all(g.weights >= 2.0)
        assert np.all(g.weights < 5.0)

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(GeneratorParameterError):
            uniform_weights(path_graph(5), low=5.0, high=2.0)

    def test_exponential_positive(self):
        g = exponential_weights(path_graph(50), seed=2)
        assert np.all(g.weights > 0)

    def test_exponential_rejects_bad_scale(self):
        with pytest.raises(GeneratorParameterError):
            exponential_weights(path_graph(5), scale=-1.0)

    def test_weights_preserve_structure(self):
        base = path_graph(10)
        g = uniform_weights(base, seed=0)
        assert g.num_edges == base.num_edges
        assert np.array_equal(g.indptr, base.indptr)


class TestCatalog:
    def test_catalog_has_eight_datasets(self):
        assert len(DATASETS) == 8
        assert dataset_names()[0] == "S8-Std"
        assert "S10-Std" in DATASETS

    def test_paper_statistics_recorded(self):
        spec = DATASETS["S8-Std"]
        assert spec.paper_vertices == 3_600_000
        assert spec.paper_edges == 153_000_000
        assert spec.paper_diameter == 6

    def test_build_is_cached(self):
        a = build_dataset("S8-Std")
        b = build_dataset("S8-Std")
        assert a is b

    def test_cache_clear(self):
        a = build_dataset("S8-Std")
        clear_dataset_cache()
        b = build_dataset("S8-Std")
        assert a is not b
        assert a.graph == b.graph  # still deterministic

    def test_dense_variant_much_denser(self):
        std = build_dataset("S8-Std").graph
        dense = build_dataset("S8-Dense").graph
        assert dense.density > 5 * std.density
        assert dense.num_vertices == std.num_vertices // 3

    def test_diam_variant_large_diameter(self):
        std = build_dataset("S8-Std").graph
        diam = build_dataset("S8-Diam").graph
        assert approximate_diameter(diam) > 5 * approximate_diameter(std)

    def test_std_diameter_small(self):
        g = build_dataset("S8-Std").graph
        assert approximate_diameter(g) <= 8  # paper: 6

    def test_scales_ordered(self):
        s8 = build_dataset("S8-Std").graph
        s9 = build_dataset("S9-Std").graph
        assert s9.num_vertices > 5 * s8.num_vertices
        assert s9.num_edges > 5 * s8.num_edges

    def test_unknown_name_rejected(self):
        with pytest.raises(GeneratorParameterError):
            build_dataset("S99-Nope")

    def test_bad_divisors_rejected(self):
        with pytest.raises(GeneratorParameterError):
            build_dataset("S8-Std", scale_divisor=0)
        with pytest.raises(GeneratorParameterError):
            build_dataset("S8-Std", degree_divisor=0)

    def test_custom_scale_divisor(self):
        small = build_dataset("S8-Std", scale_divisor=10000)
        assert small.graph.num_vertices == 360
