"""Tests for FFT-DG, the paper's failure-free trial generator."""

import numpy as np
import pytest

from repro.core import approximate_diameter, connected_components
from repro.datagen import (
    FFTDG,
    FFTDGConfig,
    GROUP_DIAMETER,
    generate_fft,
    groups_for_diameter,
)
from repro.datagen.fft import calibrate_alpha
from repro.errors import GeneratorParameterError


class TestConfig:
    def test_rejects_alpha_below_one(self):
        with pytest.raises(GeneratorParameterError):
            FFTDGConfig(num_vertices=10, alpha=0.5)

    def test_rejects_negative_c0(self):
        with pytest.raises(GeneratorParameterError):
            FFTDGConfig(num_vertices=10, c0=-1.0)

    def test_rejects_bad_group_count(self):
        with pytest.raises(GeneratorParameterError):
            FFTDGConfig(num_vertices=10, group_count=0)
        with pytest.raises(GeneratorParameterError):
            FFTDGConfig(num_vertices=10, group_count=100)

    def test_group_size(self):
        cfg = FFTDGConfig(num_vertices=100, group_count=7)
        assert cfg.group_size == 15


class TestGeneration:
    def test_deterministic(self):
        a = generate_fft(300, seed=5)
        b = generate_fft(300, seed=5)
        assert a.graph == b.graph
        assert a.counter.trials == b.counter.trials

    def test_seed_changes_graph(self):
        a = generate_fft(300, seed=5)
        b = generate_fft(300, seed=6)
        assert a.graph != b.graph

    def test_connected_via_path_edges(self):
        g = generate_fft(400, seed=1).graph
        labels = connected_components(g)
        assert np.unique(labels).size == 1

    def test_failure_free_trial_accounting(self):
        """The headline claim: trials = edges + one terminator per vertex."""
        result = generate_fft(500, alpha=10, seed=2, connect_path=False)
        counter = result.counter
        assert counter.failures <= 500  # at most one failed draw per source
        assert counter.trials_per_edge < 1.6

    def test_density_monotone_in_alpha(self):
        sparse = generate_fft(500, alpha=1.0, seed=3).graph
        dense = generate_fft(500, alpha=100.0, seed=3).graph
        assert dense.num_edges > 2 * sparse.num_edges

    def test_c0_zero_guarantees_adjacent_edges(self):
        g = generate_fft(200, seed=4, connect_path=False).graph
        for i in range(0, 150, 10):
            assert g.has_edge(i, i + 1)

    def test_target_edges_cap(self):
        result = generate_fft(300, target_edges=100, seed=1,
                              connect_path=False)
        assert result.graph.num_edges <= 100

    def test_tiny_graphs(self):
        assert generate_fft(0).graph.num_vertices == 0
        assert generate_fft(1).graph.num_edges == 0

    def test_no_self_loops_or_duplicates(self):
        g = generate_fft(300, alpha=50, seed=9).graph
        src, dst, _ = g.edge_arrays()
        assert np.all(src != dst)


class TestDiameterGroups:
    def test_groups_for_diameter(self):
        assert groups_for_diameter(101) == round(101 / (GROUP_DIAMETER + 1))
        assert groups_for_diameter(1) == 1

    def test_groups_for_diameter_rejects_bad(self):
        with pytest.raises(GeneratorParameterError):
            groups_for_diameter(0)

    def test_group_edges_confined(self):
        cfg = FFTDGConfig(num_vertices=400, alpha=20, group_count=8,
                          connect_path=False, use_homophily_order=False)
        g = FFTDG(cfg).generate().graph
        src, dst, _ = g.edge_arrays()
        group_size = cfg.group_size
        assert np.all(src // group_size == dst // group_size)

    def test_diameter_grows_with_groups(self):
        flat = generate_fft(800, alpha=20, seed=3).graph
        grouped = generate_fft(800, alpha=20, group_count=10, seed=3).graph
        assert (approximate_diameter(grouped)
                > 3 * approximate_diameter(flat))


class TestCalibration:
    def test_calibrate_alpha_hits_target(self):
        alpha = calibrate_alpha(600, 30.0, seed=1)
        g = generate_fft(600, alpha=alpha, seed=1).graph
        degree = 2 * g.num_edges / 600
        assert degree == pytest.approx(30.0, rel=0.15)

    def test_calibrate_alpha_monotone(self):
        low = calibrate_alpha(600, 20.0, seed=1)
        high = calibrate_alpha(600, 60.0, seed=1)
        assert high > low

    def test_calibrate_rejects_bad_target(self):
        with pytest.raises(GeneratorParameterError):
            calibrate_alpha(100, -1.0)


class TestDrawBuffer:
    """The batched draw stream must be seamless across the 64k refill."""

    def _buffers(self):
        from repro.datagen.fft import _DrawBuffer

        return (
            _DrawBuffer(np.random.default_rng(9)),
            _DrawBuffer(np.random.default_rng(9)),
        )

    def test_take_refills_at_exact_boundary(self):
        a, b = self._buffers()
        head = a.take(65536)          # drains the buffer exactly
        tail = a.take(3)              # forces a refill
        merged = b.take(65539)        # crosses the boundary in one call
        assert np.array_equal(np.concatenate([head, tail]), merged)

    def test_take_matches_scalar_next(self):
        a, b = self._buffers()
        scalars = np.array([a.next() for _ in range(100)])
        assert np.array_equal(scalars, b.take(100))

    def test_next_after_boundary_take(self):
        a, b = self._buffers()
        a.take(65536)
        merged = b.take(65537)
        assert a.next() == merged[-1]

    def test_draws_exclude_zero(self):
        a, _ = self._buffers()
        draws = a.take(200000)
        assert (draws > 0.0).all() and (draws <= 1.0).all()


class TestTargetEdgesTruncation:
    def test_truncates_mid_group(self):
        # 4 groups of 20; the cap lands inside the sampling stage, so
        # the walk stops mid-group with exactly the requested count.
        target = 100
        cfg = FFTDGConfig(
            num_vertices=80, alpha=50.0, group_count=4,
            target_edges=target, use_homophily_order=False, seed=2,
        )
        src, dst, counter = FFTDG(cfg)._sample_edges()
        assert src.shape[0] == target and dst.shape[0] == target
        # the path edges come first, then sampled in-group edges
        n_path = 79
        assert counter.edges == target - n_path
        sampled_src, sampled_dst = src[n_path:], dst[n_path:]
        assert (sampled_src // 20 == sampled_dst // 20).all()
        assert (sampled_dst > sampled_src).all()

    def test_truncates_within_path(self):
        cfg = FFTDGConfig(
            num_vertices=80, alpha=50.0, target_edges=10,
            use_homophily_order=False, seed=2,
        )
        src, dst, counter = FFTDG(cfg)._sample_edges()
        assert np.array_equal(src, np.arange(10))
        assert np.array_equal(dst, np.arange(1, 11))
        assert counter.trials == 0  # no draws were needed

    def test_graph_respects_cap(self):
        result = generate_fft(500, alpha=100.0, target_edges=300, seed=4)
        assert result.graph.num_edges <= 300
        # cap below the path length: no sampling draws happened at all
        assert result.counter.edges == 0
