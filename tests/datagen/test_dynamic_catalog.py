"""Tests for bulk-loaded streams and the Dyn- catalog dataset family."""

import numpy as np
import pytest

from repro.datagen.catalog import (
    DYNAMIC_DATASET_PREFIX,
    build_dataset,
    dynamic_dataset_name,
    dynamic_stream,
)
from repro.datagen.dynamic import generate_stream
from repro.errors import GeneratorParameterError


class TestBulkLoadStream:
    def test_front_loads_the_requested_fraction(self):
        stream = generate_stream(300, edges_per_batch=40, bulk_load=0.9,
                                 seed=5)
        total = stream.total_edges
        assert stream.batches[0].size >= 0.85 * total
        assert all(b.size <= 40 for b in stream.batches[1:])
        assert stream.batches[0].size + sum(
            b.size for b in stream.batches[1:]
        ) == total

    def test_union_unchanged_by_shape(self):
        uniform = generate_stream(250, num_batches=5, seed=9)
        fronted = generate_stream(250, num_batches=5, bulk_load=0.8, seed=9)
        assert uniform.final_graph() == fronted.final_graph()

    def test_zero_bulk_load_is_the_uniform_split(self):
        a = generate_stream(200, num_batches=4, seed=1)
        b = generate_stream(200, num_batches=4, bulk_load=0.0, seed=1)
        assert [x.size for x in a.batches] == [x.size for x in b.batches]

    @pytest.mark.parametrize("fraction", [-0.1, 1.0, 1.5])
    def test_rejects_out_of_range_fraction(self, fraction):
        with pytest.raises(GeneratorParameterError):
            generate_stream(100, bulk_load=fraction)

    def test_times_are_sequential(self):
        stream = generate_stream(200, edges_per_batch=30, bulk_load=0.9,
                                 seed=2)
        assert [b.time for b in stream.batches] == list(range(len(stream)))


class TestDynDatasets:
    def test_name_round_trip(self):
        name = dynamic_dataset_name(300, 40, 2)
        assert name == "Dyn-300x40@2"
        assert name.startswith(DYNAMIC_DATASET_PREFIX)

    def test_snapshot_served_as_dataset(self):
        stream = dynamic_stream(300, 40)
        instance = build_dataset(dynamic_dataset_name(300, 40, 1))
        expected = stream.snapshot(1)
        assert instance.graph.num_vertices == 300
        assert np.array_equal(instance.graph.indptr, expected.indptr)
        assert np.array_equal(instance.graph.indices, expected.indices)

    def test_windows_grow(self):
        g0 = build_dataset(dynamic_dataset_name(300, 40, 0)).graph
        g2 = build_dataset(dynamic_dataset_name(300, 40, 2)).graph
        assert g2.num_edges > g0.num_edges

    def test_stream_is_memoized(self):
        assert dynamic_stream(300, 40) is dynamic_stream(300, 40)

    @pytest.mark.parametrize("name", [
        "Dyn-300x40@999",      # window out of range
        "Dyn-0x40@0",          # zero vertices
        "Dyn-300x0@0",         # zero batch size
        "Dyn-300x40",          # malformed: no window
        "Dyn-abcx40@0",        # malformed: non-numeric
    ])
    def test_bad_names_rejected(self, name):
        with pytest.raises(GeneratorParameterError):
            build_dataset(name)
