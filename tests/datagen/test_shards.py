"""Shard-boundary determinism for the out-of-core FFT-DG pipeline.

The contract under test: ``generate_fft_to_disk`` writes a CSR file that
is byte-identical to serializing the in-memory generator's graph — for
*every* shard size and bucket width — because both paths consume the
same RNG chunk stream and the external build's per-bucket sorted-unique
concatenation reproduces the global CSR sort exactly.
"""

import numpy as np
import pytest

from repro.core.mmapcsr import open_graph_csr, write_graph_csr
from repro.datagen import (
    FFTDG,
    FFTDGConfig,
    count_unique_edges,
    generate_fft_to_disk,
)
from repro.datagen.fft import calibrate_alpha
from repro.errors import GeneratorParameterError

# One shard / a handful of shards / shard-per-round pathological.
SHARDINGS = [
    {"shard_edges": 1 << 30, "bucket_slots": 1 << 30},
    {"shard_edges": 4096, "bucket_slots": 8192},
    {"shard_edges": 257, "bucket_slots": 511},
]

CONFIGS = {
    "basic": FFTDGConfig(num_vertices=3000, alpha=8.0, seed=3),
    "grouped": FFTDGConfig(num_vertices=2500, alpha=6.0, group_count=7, seed=5),
    "target-edges": FFTDGConfig(num_vertices=2000, alpha=10.0,
                                target_edges=4000, seed=9),
    "relabel": FFTDGConfig(num_vertices=1500, alpha=5.0,
                           relabel_to_original_ids=True, seed=2),
    "tiny": FFTDGConfig(num_vertices=1, alpha=1.0, seed=0),
}


@pytest.mark.parametrize("name", list(CONFIGS))
def test_sharded_build_matches_in_memory(name, tmp_path):
    config = CONFIGS[name]
    mem = FFTDG(config).generate()
    reference = tmp_path / "reference.csr"
    write_graph_csr(mem.graph, reference)
    ref_bytes = reference.read_bytes()

    digests = set()
    for i, sharding in enumerate(SHARDINGS):
        path = tmp_path / f"sharded-{i}.csr"
        gen = generate_fft_to_disk(config, path, **sharding)
        digests.add(gen.digest)
        graph, _ = open_graph_csr(path)
        assert np.array_equal(graph.indptr, mem.graph.indptr)
        assert np.array_equal(graph.indices, mem.graph.indices)
        assert gen.num_edges == mem.graph.num_edges
        assert gen.counter.trials == mem.counter.trials
        assert gen.counter.edges == mem.counter.edges
        # The array payload must be byte-identical to the in-memory
        # graph's serialization (headers differ only in meta/digest-free
        # fields when meta differs, so compare the array region).
        sharded_bytes = path.read_bytes()
        assert sharded_bytes[4096:] == ref_bytes[4096:]
    assert len(digests) == 1, "digest must not depend on sharding"


def test_digest_matches_in_memory_serialization(tmp_path):
    # Same meta on both sides → fully byte-identical files.
    config = CONFIGS["basic"]
    gen = generate_fft_to_disk(config, tmp_path / "a.csr")
    mem = FFTDG(config).generate()
    mem_digest = write_graph_csr(
        mem.graph,
        tmp_path / "b.csr",
        meta={
            "parameters": gen.parameters,
            "trials": mem.counter.trials,
            "sampled_edges": mem.counter.edges,
            "elapsed_seconds": gen.elapsed_seconds,
        },
    )
    assert gen.digest == mem_digest
    assert (tmp_path / "a.csr").read_bytes() == \
        (tmp_path / "b.csr").read_bytes()


def test_count_unique_edges_matches_graph(tmp_path):
    for name, config in CONFIGS.items():
        expected = FFTDG(config).generate().graph.num_edges
        for sharding in SHARDINGS[:2]:
            assert count_unique_edges(config, **sharding) == expected, name


def test_calibration_hook_identical_alpha():
    alpha_mem = calibrate_alpha(1200, 6.0, seed=4)
    alpha_ooc = calibrate_alpha(
        1200, 6.0, seed=4, edge_count_fn=count_unique_edges
    )
    assert alpha_mem == alpha_ooc


def test_parameter_validation(tmp_path):
    config = CONFIGS["tiny"]
    with pytest.raises(GeneratorParameterError, match="shard_edges"):
        generate_fft_to_disk(config, tmp_path / "g.csr", shard_edges=0)
    with pytest.raises(GeneratorParameterError, match="bucket_slots"):
        generate_fft_to_disk(config, tmp_path / "g.csr", bucket_slots=0)


def test_meta_provenance_roundtrip(tmp_path):
    config = CONFIGS["grouped"]
    gen = generate_fft_to_disk(config, tmp_path / "g.csr")
    _, header = open_graph_csr(tmp_path / "g.csr")
    meta = header["meta"]
    assert meta["parameters"]["n"] == config.num_vertices
    assert meta["parameters"]["group_count"] == config.group_count
    assert meta["trials"] == gen.counter.trials
    assert meta["sampled_edges"] == gen.counter.edges


def test_work_dir_scratch_is_cleaned(tmp_path):
    scratch = tmp_path / "scratch"
    scratch.mkdir()
    generate_fft_to_disk(
        CONFIGS["basic"], tmp_path / "g.csr", work_dir=scratch,
        shard_edges=1024,
    )
    assert list(scratch.iterdir()) == []
