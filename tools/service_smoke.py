"""CI smoke: the benchmark service serves a Zipfian tenant burst.

End-to-end over the real TCP protocol, twice:

* **burst 1** — 8 tenants fire a Zipfian burst of submissions (a few
  hot cases dominate) at a fresh service over an empty store.  The
  service must dedupe in-flight duplicates, execute each unique case
  once, populate the store, and shut down cleanly on the ``shutdown``
  op.
* **burst 2** — a *new* service generation (session memo cleared, same
  store) replays the burst.  It must be served from the persistent
  store — nonzero hit counter — and return outcomes bit-identical to
  burst 1 **and** to direct :func:`run_case` executions.

Exit status is non-zero on any violation, so CI catches a broken
scheduler (queue leaks), a broken dedupe (duplicate executions), a
broken store integration (no warm hits), or a broken schema (fingerprint
drift).  Stdlib + repro only; run locally with

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench import store as store_mod  # noqa: E402
from repro.bench.runner import clear_case_cache  # noqa: E402
from repro.service import (  # noqa: E402
    BenchmarkService,
    CaseRequest,
    ServiceServer,
    SubmitRequest,
    case_key,
    outcome_fingerprint,
)

TENANTS = 8
SUBMISSIONS = 64
ZIPF_S = 1.2

#: Unique case pool; Zipf rank 0 is the hottest.
CASES = (
    CaseRequest.make("Flash", "pr", "S8-Std", scale_divisor=20000),
    CaseRequest.make("Grape", "wcc", "S8-Std", scale_divisor=20000),
    CaseRequest.make("Pregel+", "sssp", "S8-Std", scale_divisor=20000),
    CaseRequest.make("PowerGraph", "lpa", "S8-Std", scale_divisor=20000),
    CaseRequest.make("Flash", "wcc", "S8-Std", scale_divisor=20000),
    CaseRequest.make("Grape", "pr", "S8-Std", scale_divisor=20000),
)


def _zipf_choice(rng: random.Random) -> CaseRequest:
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(CASES))]
    return rng.choices(CASES, weights=weights, k=1)[0]


async def _tenant(host, port, tenant, submissions, rng_seed):
    """One tenant's client connection: submit a burst, await results."""
    rng = random.Random(rng_seed)
    reader, writer = await asyncio.open_connection(host, port)

    async def rpc(payload):
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        response = json.loads(await reader.readline())
        if not response.get("ok"):
            raise SystemExit(f"{tenant}: rpc failed: {response}")
        return response

    fingerprints = {}
    for _ in range(submissions):
        case = _zipf_choice(rng)
        request = SubmitRequest(
            tenant=tenant, cases=(case,), priority=rng.randint(1, 4)
        )
        submitted = await rpc({"op": "submit", "request": request.to_wire()})
        result = await rpc({"op": "result", "job_id": submitted["job_id"]})
        outcome = result["result"]["outcomes"][0]
        if outcome["status"] != "ok":
            raise SystemExit(f"{tenant}: case failed: {outcome}")
        fingerprints.setdefault(
            case_key(case.to_spec()), outcome["fingerprint"]
        )
    writer.close()
    await writer.wait_closed()
    return fingerprints


async def _burst(label: str) -> tuple[dict, dict]:
    """One service generation serving all tenants; returns
    (per-case fingerprints, final metrics)."""
    async with BenchmarkService(jobs=4) as service:
        server = await ServiceServer(service, port=0).start()
        host, port = server.address
        per_tenant = await asyncio.gather(*(
            _tenant(host, port, f"tenant-{i}", SUBMISSIONS // TENANTS,
                    rng_seed=100 + i)
            for i in range(TENANTS)
        ))
        metrics = service.metrics()

        # Clean shutdown through the protocol, like a real client.
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(json.dumps({"op": "shutdown"}).encode() + b"\n")
        await writer.drain()
        if not json.loads(await reader.readline()).get("ok"):
            raise SystemExit(f"{label}: shutdown op failed")
        writer.close()
        await server.wait_closed()

    fingerprints: dict = {}
    for tenant_fps in per_tenant:
        for key, fp in tenant_fps.items():
            if fingerprints.setdefault(key, fp) != fp:
                raise SystemExit(
                    f"{label}: tenants saw different outcomes for {key}"
                )
    return fingerprints, metrics


def main() -> None:
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as root:
        store_mod.set_artifact_store(store_mod.ArtifactStore(root))
        clear_case_cache()
        cold_fps, cold_metrics = asyncio.run(_burst("cold"))

        store = store_mod.get_artifact_store()
        hits_before = store.stats()["hits"]
        clear_case_cache()  # new session: memo gone, store remains
        warm_fps, warm_metrics = asyncio.run(_burst("warm"))
        warm_hits = store.stats()["hits"] - hits_before

        # Direct parity: a fresh sequential session must fingerprint
        # identically to what the service served.
        clear_case_cache()
        store_mod.set_artifact_store(None)
        direct_fps = {
            case_key(c.to_spec()): outcome_fingerprint(c.to_spec().run())
            for c in CASES
        }

    for label, metrics in (("cold", cold_metrics), ("warm", warm_metrics)):
        print(f"{label}: cases={metrics['cases']} "
              f"queues={metrics['queues']['per_tenant']}")
        if metrics["cases"]["completed"] != SUBMISSIONS:
            failures.append(f"{label}: completed != {SUBMISSIONS}")
        if metrics["queues"]["depth_total"] != 0:
            failures.append(f"{label}: queue leaked")
        if metrics["jobs"]["done"] != metrics["jobs"]["submitted"]:
            failures.append(f"{label}: unfinished jobs at shutdown")
    print(f"warm store hits: {warm_hits}")

    if warm_hits == 0:
        failures.append("warm burst never hit the persistent store")
    if cold_fps != warm_fps:
        failures.append("cold and warm bursts served different outcomes")
    executed = {k: v for k, v in direct_fps.items() if k in cold_fps}
    if executed != cold_fps:
        failures.append("served outcomes differ from direct run_case")

    if failures:
        print("FAIL:", *failures, sep="\n  - ")
        raise SystemExit(1)
    print("service smoke OK: dedupe, store reuse, parity, clean shutdown")


if __name__ == "__main__":
    main()
