"""CI smoke: intra-case sharding is bit-identical and actually shards.

Exercises the partition-parallel superstep path end to end, at tiny
scale, in both engine families:

1. an mmap-backed dataset is opened from its on-disk CSR, so the shard
   workers attach the *same* file zero-copy instead of receiving
   pickled array copies;
2. a vertex-centric PR run and an edge-centric (PowerGraph) PR run with
   ``intra_jobs=2`` are diffed against their ``intra_jobs=1`` twins —
   values, priced results, and full ``WorkTrace`` matrices must be
   bit-identical;
3. tracing is on for the sharded leg and the ``shard_tasks`` counter
   must be nonzero, proving the run really dispatched to shard workers
   rather than silently falling back in-process.

The slot budget is raised explicitly: CI runners may report a single
CPU, which would otherwise clamp every request to one shard and turn
this smoke into a no-op.

Exit status is non-zero on any divergence.
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import obs  # noqa: E402
from repro.cluster import single_machine  # noqa: E402
from repro.core.mmapcsr import open_graph_csr, write_graph_csr  # noqa: E402
from repro.core import random_graph  # noqa: E402
from repro.platforms import get_platform  # noqa: E402
from repro.platforms.parallel import set_slot_budget  # noqa: E402
from repro.platforms.parallel.shard import shutdown_shard_pools  # noqa: E402


def _assert_traces_identical(a, b, what):
    assert a.supersteps == b.supersteps, f"{what}: superstep counts differ"
    for i, (sa, sb) in enumerate(zip(a.steps, b.steps)):
        assert np.array_equal(sa.ops, sb.ops), f"{what}: ops @ {i}"
        assert np.array_equal(sa.msg_count, sb.msg_count), \
            f"{what}: msg_count @ {i}"
        assert np.array_equal(sa.msg_bytes, sb.msg_bytes), \
            f"{what}: msg_bytes @ {i}"


def _mmap_backed(array: np.ndarray) -> bool:
    a = array
    while a is not None:
        if isinstance(a, np.memmap):
            return True
        a = a.base
    return False


def _smoke_platform(platform_name, graph, what):
    platform = get_platform(platform_name)
    single = platform.run("pr", graph, single_machine(),
                          engine_mode="bulk", intra_jobs=1)
    with obs.tracing() as tracer:
        sharded = platform.run("pr", graph, single_machine(),
                               engine_mode="bulk", intra_jobs=2)
    tasks = tracer.counters.get(obs.SHARD_TASKS, 0.0)
    assert tasks > 0, \
        f"{what}: intra_jobs=2 never dispatched a shard task " \
        "(silent in-process fallback)"
    assert np.array_equal(np.asarray(single.values),
                          np.asarray(sharded.values)), \
        f"{what}: sharded values diverge"
    _assert_traces_identical(single.trace, sharded.trace, what)
    return tasks


def main() -> None:
    set_slot_budget(4)
    mem = random_graph(400, 1600, seed=11)
    with tempfile.TemporaryDirectory(prefix="repro-par-smoke-") as root:
        csr = Path(root) / "smoke.csr"
        write_graph_csr(mem, csr)
        graph, _ = open_graph_csr(csr, verify_digest=True)
        assert _mmap_backed(graph.indices), "CSR reopen is not mmap-backed"
        try:
            vc_tasks = _smoke_platform("GraphX", graph, "vertex-centric")
            gas_tasks = _smoke_platform("PowerGraph", graph, "edge-centric")
        finally:
            shutdown_shard_pools()
    print(f"parallel smoke ok: vertex-centric ({vc_tasks:.0f} shard "
          f"tasks) and edge-centric ({gas_tasks:.0f} shard tasks) "
          "sharded runs bit-identical over zero-copy mmap CSR")


if __name__ == "__main__":
    main()
