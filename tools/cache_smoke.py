"""CI smoke: the persistent cache serves a repeated pooled run.

Runs a tiny grid through the ``repro-bench`` CLI twice with ``--jobs 2``
against the same ``--cache-dir``:

* the first (cold) run must miss and populate the store;
* the second (warm) run must be served from it — nonzero hit counter,
  zero misses, zero puts — and print byte-identical tables.

Exit status is non-zero on any violation, so CI catches both a broken
store (nothing persisted) and a broken key scheme (warm run re-executes
or re-addresses).
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
STATS = re.compile(
    r"cache: dir=.* hits=(?P<hits>\d+) misses=(?P<misses>\d+) "
    r"puts=(?P<puts>\d+)"
)


def _run(cache_dir: str) -> tuple[str, dict[str, int]]:
    """One CLI invocation; returns (stdout, parsed cache stats)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.cli", "timing",
         "--jobs", "2", "--cache-dir", cache_dir],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"repro-bench exited {proc.returncode}:\n{proc.stderr}"
        )
    match = STATS.search(proc.stderr)
    if match is None:
        raise SystemExit(
            f"no cache-stats line on stderr:\n{proc.stderr}"
        )
    return proc.stdout, {k: int(v) for k, v in match.groupdict().items()}


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as cache:
        cold_out, cold = _run(cache)
        warm_out, warm = _run(cache)

    print(f"cold: {cold}")
    print(f"warm: {warm}")
    failures = []
    if cold["puts"] == 0:
        failures.append("cold run stored nothing")
    if warm["hits"] == 0:
        failures.append("warm run hit nothing")
    if warm["misses"] != 0 or warm["puts"] != 0:
        failures.append(
            f"warm run was not served entirely from cache "
            f"(misses={warm['misses']}, puts={warm['puts']})"
        )
    if warm_out != cold_out:
        failures.append("warm run printed different tables than cold run")
    if failures:
        raise SystemExit("; ".join(failures))
    print("cache smoke ok: warm run served entirely from the store")


if __name__ == "__main__":
    main()
