"""Calibrate per-platform learnability traits against the paper.

The simulated LLM's error model has two free parameters per platform
(novice and expert difficulty).  This tool bisects the *measured*
pipeline score as a function of the error rate to find the rates that
reproduce the paper's published LLM scores at the Intermediate and
Senior levels (Table 12), then inverts the knowledge-interpolation to
recover (novice, expert) difficulties for ``repro/usability/apis.py``.

Run after changing the generator or evaluator:

    python tools/calibrate_usability.py
"""

from __future__ import annotations

import numpy as np

from repro.usability.apis import API_SPECS, get_api_spec
from repro.usability.evaluator import CodeEvaluator
from repro.usability.generator import CodeGenerator
from repro.usability.prompts import PromptLevel, TASK_DESCRIPTIONS
from repro.usability.human import PAPER_LLM_SCORES
from repro.usability.scoring import ScoreWeights

TUNING_DISCOUNT = 0.9 ** 2  # must match CodeGenerator(tuning_rounds=3)


def score_at_rate(platform: str, rate: float, *, repetitions: int = 8) -> float:
    """Measured overall score when the generator errs at ``rate``."""
    spec = get_api_spec(platform)
    generator = CodeGenerator(spec)
    generator.error_rate = lambda level, _r=rate: _r  # type: ignore[assignment]
    evaluator = CodeEvaluator(spec)
    weights = ScoreWeights()
    scores = []
    for algorithm in TASK_DESCRIPTIONS:
        for rep in range(repetitions):
            sample = generator.generate(algorithm, PromptLevel.SENIOR, seed=rep)
            scores.append(weights.combine(evaluator.evaluate(algorithm, sample.code)))
    return float(np.mean(scores))


def rate_for_target(platform: str, target: float) -> float:
    """Bisect the (monotone decreasing) score-vs-rate curve."""
    lo, hi = 0.0, 0.9
    for _ in range(22):
        mid = (lo + hi) / 2
        if score_at_rate(platform, mid) > target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def main() -> None:
    print(f"{'platform':<12} {'nov':>6} {'exp':>6}   (check I/S)")
    for platform in API_SPECS:
        t_i = PAPER_LLM_SCORES[PromptLevel.INTERMEDIATE][platform]
        t_s = PAPER_LLM_SCORES[PromptLevel.SENIOR][platform]
        r_i = rate_for_target(platform, t_i)
        r_s = rate_for_target(platform, t_s)
        nov = (2 * r_i - r_s) / TUNING_DISCOUNT
        exp = (2 * r_s - r_i) / TUNING_DISCOUNT
        nov = min(1.0, max(0.0, nov))
        exp = min(1.0, max(0.0, exp))
        print(f"{platform:<12} {nov:6.3f} {exp:6.3f}   "
              f"targets {t_i:.1f}/{t_s:.1f} rates {r_i:.3f}/{r_s:.3f}")


if __name__ == "__main__":
    main()
