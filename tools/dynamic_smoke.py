#!/usr/bin/env python
"""CI smoke for the PEval/IncEval streaming mode (``repro.platforms
.vertex_centric.streaming`` + ``repro.bench.dynamic_exp``).

Runs short dynamic-workload cases — WCC and delta PageRank over a
bulk-loaded FFT-DG stream — and asserts the engine-level incremental
path holds its contract:

* every IncEval window prices cheaper than a cold recompute of the same
  program, and the summed speedup clears 3x;
* per-window result parity (bit-exact for WCC, certified tolerance for
  PR) — checked inside ``run_dynamic_case``, which raises on violation;
* a crash mid-stream recovers bit-identically by replaying the update
  log from the last checkpoint.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.dynamic_exp import crash_replay_case, run_dynamic_case

NUM_BATCHES = 4
MIN_SPEEDUP = 3.0


def main() -> int:
    """Run the streaming smoke cases; return a process exit code."""
    failures: list[str] = []
    reports = {}
    for algorithm in ("wcc", "pr"):
        report = run_dynamic_case(algorithm, num_batches=NUM_BATCHES)
        reports[algorithm] = report
        if report.speedup < MIN_SPEEDUP:
            failures.append(
                f"{algorithm}: IncEval speedup {report.speedup:.1f}x "
                f"below {MIN_SPEEDUP}x"
            )
        slow = [
            w.window for w in report.windows
            if w.window > 0 and w.incremental_seconds >= w.recompute_seconds
        ]
        if slow:
            failures.append(
                f"{algorithm}: windows {slow} priced warm >= cold"
            )

    crash = crash_replay_case(
        "wcc", num_batches=NUM_BATCHES, crash_window=NUM_BATCHES - 1
    )
    if not crash["bit_identical"]:
        failures.append("crash replay did not recover bit-identically")
    if crash["replayed_windows"] < 1:
        failures.append("crash recovery replayed no update-log windows")

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        "dynamic smoke OK: "
        + ", ".join(
            f"{a} speedup {r.speedup:.1f}x ({r.windows[-1].parity})"
            for a, r in reports.items()
        )
        + f"; crash @window {crash['crash_window']} replayed "
        f"{crash['replayed_windows']} window(s) bit-identically"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
