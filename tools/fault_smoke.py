#!/usr/bin/env python
"""CI smoke test for the fault-injection subsystem (``repro.faults``).

Runs Pregel+ PageRank on S8-Std over 4 machines, crashes machine 1 at
superstep 2, and asserts the recovered run is *bit-identical* to the
failure-free one:

* the algorithm output arrays are exactly equal;
* the timeline's reconstructed failure-free trace equals the baseline
  trace record-for-record (ops, message counts, message bytes);
* the same schedule prices to the same seconds twice (determinism);
* the priced run actually paid checkpoint and recovery terms.

Exits non-zero with a diagnostic on any mismatch.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.cluster.spec import scale_out
from repro.datagen.catalog import build_dataset
from repro.faults import FaultSchedule, MachineCrash
from repro.platforms.registry import get_platform


def main() -> int:
    """Run the crash-recovery smoke case; return a process exit code."""
    graph = build_dataset("S8-Std").graph
    cluster = scale_out(4)
    platform = get_platform("Pregel+")

    baseline = platform.run("pr", graph, cluster)
    schedule = FaultSchedule(crashes=(MachineCrash(superstep=2, machine=1),))
    faulted = platform.run(
        "pr", graph, cluster, fault_schedule=schedule, checkpoint_interval=2
    )

    failures: list[str] = []
    if not np.array_equal(
        np.asarray(baseline.values), np.asarray(faulted.values)
    ):
        failures.append("recovered output differs from failure-free output")

    timeline = faulted.timeline
    if timeline is None or len(timeline.crashes) != 1:
        failures.append(f"expected 1 injected crash, got timeline={timeline}")
    else:
        ff = timeline.failure_free_trace(faulted.trace)
        base_steps = baseline.trace.steps
        if len(ff.steps) != len(base_steps):
            failures.append(
                f"failure-free trace has {len(ff.steps)} steps, "
                f"baseline has {len(base_steps)}"
            )
        else:
            for i, (a, b) in enumerate(zip(ff.steps, base_steps)):
                if not (np.array_equal(a.ops, b.ops)
                        and np.array_equal(a.msg_count, b.msg_count)
                        and np.array_equal(a.msg_bytes, b.msg_bytes)):
                    failures.append(f"trace record {i} differs from baseline")
                    break

    again = platform.run(
        "pr", graph, cluster, fault_schedule=schedule, checkpoint_interval=2
    )
    if again.priced.seconds != faulted.priced.seconds:
        failures.append(
            f"same schedule priced differently: {faulted.priced.seconds} "
            f"vs {again.priced.seconds}"
        )

    if faulted.priced.checkpoint_seconds <= 0:
        failures.append("checkpoint_seconds not charged")
    if faulted.priced.recovery_seconds <= 0:
        failures.append("recovery_seconds not charged")
    if faulted.priced.seconds <= baseline.priced.seconds:
        failures.append("faulted run not slower than failure-free run")

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        "fault smoke OK: crash at superstep 2 recovered to bit-identical "
        f"output; {baseline.priced.seconds:.3f}s failure-free vs "
        f"{faulted.priced.seconds:.3f}s faulted "
        f"(checkpoint {faulted.priced.checkpoint_seconds:.3f}s, "
        f"recovery {faulted.priced.recovery_seconds:.3f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
