#!/usr/bin/env python3
"""Markdown link checker for the repository documentation.

Scans ``README.md`` and every ``docs/*.md`` file for markdown links and
verifies that

* relative links resolve to an existing file or directory (anchors are
  stripped; ``#section`` fragments are not validated against headings);
* reference-style definitions (``[label]: target``) resolve too;
* absolute ``http(s)`` URLs are well-formed (no network access — CI must
  not flake on someone else's server).

It also guards against benchmark-output path drift: every mention of a
``BENCH_*.json`` artifact (in ``README.md``, ``ROADMAP.md``, or the
docs — raw text, code spans and fences included) must spell the full
``benchmarks/out/`` path, because that is where the bench scripts
actually write.  Bare filenames rotted once before when the outputs
moved; existence is deliberately not checked (bench outputs are
generated, not committed).

Stdlib only; exits non-zero listing every broken link.  Run locally with

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from urllib.parse import urlparse

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Pages that must exist (beyond whatever ``docs/*.md`` happens to glob):
#: the checker fails loudly if one goes missing instead of silently
#: checking fewer files.
REQUIRED_PAGES = (
    "README.md",
    "docs/architecture.md",
    "docs/benchmarking.md",
    "docs/data-generators.md",
    "docs/dynamic.md",
    "docs/scaling.md",
    "docs/service.md",
)

#: Inline links/images: [text](target) — target ends at the first
#: unescaped closing paren; titles ("...") after the URL are dropped.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference definitions: [label]: target
REFERENCE_DEF = re.compile(r"^\[[^\]]+\]:\s+<?(\S+?)>?\s*$", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~)", re.MULTILINE)
#: Benchmark-output mentions; group 1 captures the required directory
#: prefix when present.
BENCH_TOKEN = re.compile(r"(benchmarks/out/)?\bBENCH_\w+\.json")

#: Files whose BENCH_*.json mentions must carry the full path.  The
#: docs glob is added in main(); CHANGES.md is deliberately excluded
#: (it is an append-only historical log).
BENCH_SCANNED = ("README.md", "ROADMAP.md")


def _strip_code_blocks(text: str) -> str:
    """Blank out fenced code blocks so example links are not checked."""
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if FENCE.match(line):
            in_fence = not in_fence
            out.append("")
        else:
            out.append("" if in_fence else line)
    return "\n".join(out)


def _targets(text: str) -> list[str]:
    text = _strip_code_blocks(text)
    found = INLINE_LINK.findall(text)
    found += REFERENCE_DEF.findall(text)
    return found


def check_file(path: Path) -> list[str]:
    """Return a list of broken-link descriptions for one markdown file."""
    problems: list[str] = []
    for target in _targets(path.read_text(encoding="utf-8")):
        parsed = urlparse(target)
        if parsed.scheme in ("http", "https"):
            if not parsed.netloc:
                problems.append(f"{path}: malformed URL {target!r}")
            continue
        if parsed.scheme == "mailto" or target.startswith("#"):
            continue
        relative = parsed.path
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken relative link {target!r}")
    return problems


def check_bench_paths(path: Path) -> list[str]:
    """Flag ``BENCH_*.json`` mentions missing the ``benchmarks/out/``
    prefix.

    Scans the raw text — unlike the link check, fenced examples and
    inline code are exactly where these artifacts get referenced.
    """
    problems: list[str] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in BENCH_TOKEN.finditer(line):
            if not match.group(1):
                problems.append(
                    f"{path}:{lineno}: bench output "
                    f"{match.group(0).split('/')[-1]!r} referenced "
                    "without its benchmarks/out/ directory"
                )
    return problems


def main() -> int:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    files += [
        p for page in REQUIRED_PAGES
        if (p := REPO_ROOT / page) not in files
    ]
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"missing expected file: {f}", file=sys.stderr)
        return 1

    bench_scanned = list(files)
    bench_scanned += [
        p for page in BENCH_SCANNED
        if (p := REPO_ROOT / page) not in bench_scanned and p.exists()
    ]

    problems: list[str] = []
    checked = 0
    for path in files:
        problems += check_file(path)
        checked += 1
    for path in bench_scanned:
        problems += check_bench_paths(path)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} broken link(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"{checked} markdown files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
