"""CI smoke: the out-of-core dataset path, end to end, in seconds.

Exercises the whole ``--dataset-format mmap`` chain at tiny scale:

1. sharded FFT-DG generation straight to an on-disk CSR file, with a
   deliberately small shard size so multiple shards actually happen;
2. zero-copy reopening via ``numpy.memmap`` (asserted: the served
   arrays are mmap-backed and read-only, and byte-identical to the
   in-memory generator's);
3. one PR case through ``run_case`` in mmap mode, parity-asserted
   against the same case in memory mode.

Exit status is non-zero on any divergence, so CI catches a broken shard
pipeline (wrong bytes), broken shipping (silent copies), and broken
parity (outcomes depending on the container format).
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench import CaseSpec, clear_case_cache  # noqa: E402
from repro.bench.store import ArtifactStore, set_artifact_store  # noqa: E402
from repro.core.mmapcsr import open_graph_csr  # noqa: E402
from repro.datagen import (  # noqa: E402
    FFTDG,
    FFTDGConfig,
    build_dataset,
    clear_dataset_cache,
    generate_fft_to_disk,
    set_dataset_format,
)

KW = dict(scale_divisor=8000, degree_divisor=6, seed=7)


def _mmap_backed(array: np.ndarray) -> bool:
    a = array
    while a is not None:
        if isinstance(a, np.memmap):
            return True
        a = a.base
    return False


def main() -> None:
    # 1. Tiny sharded generation: small shards force the multi-shard
    # code path; the result must match the in-memory generator exactly.
    config = FFTDGConfig(num_vertices=1200, alpha=6.0, seed=5)
    mem = FFTDG(config).generate()
    with tempfile.TemporaryDirectory(prefix="repro-ooc-smoke-") as root:
        csr = Path(root) / "smoke.csr"
        gen = generate_fft_to_disk(config, csr, shard_edges=500)
        graph, _ = open_graph_csr(csr, verify_digest=True)
        assert np.array_equal(graph.indptr, mem.graph.indptr), \
            "sharded indptr diverges from in-memory generation"
        assert np.array_equal(graph.indices, mem.graph.indices), \
            "sharded indices diverge from in-memory generation"
        assert gen.counter.trials == mem.counter.trials, \
            "sharded path consumed a different RNG stream"

        # 2. The catalog's mmap format serves zero-copy views.
        set_artifact_store(ArtifactStore(Path(root) / "store"))
        set_dataset_format("mmap")
        clear_dataset_cache()
        clear_case_cache()
        try:
            ds = build_dataset("S8-Std", **KW)
            assert _mmap_backed(ds.graph.indices), \
                "mmap-format dataset is not memmap-backed"
            assert not ds.graph.indices.flags.writeable, \
                "mmap-format dataset arrays must be read-only"

            # 3. One PR case, parity-asserted against memory mode.
            spec = CaseSpec.make("Flash", "pr", "S8-Std",
                                 scale_divisor=KW["scale_divisor"])
            mmap_outcome = spec.run()
        finally:
            set_dataset_format("memory")
            set_artifact_store(None)
            clear_dataset_cache()
            clear_case_cache()
        memory_outcome = spec.run()
        assert mmap_outcome.status == memory_outcome.status == "ok"
        assert np.array_equal(
            np.asarray(mmap_outcome.result.values),
            np.asarray(memory_outcome.result.values),
        ), "PR output depends on the dataset container format"
        assert mmap_outcome.result.metrics == memory_outcome.result.metrics
    print("out-of-core smoke ok: sharded CSR byte-identical, "
          "zero-copy mmap serving, case parity")


if __name__ == "__main__":
    main()
